#include "core/load_timeline.hpp"

#include <gtest/gtest.h>

#include "darshan/runtime.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace mlio::core {
namespace {

using darshan::JobRecord;
using darshan::LogData;
using darshan::ModuleId;
using util::kMB;

LogData log_with(std::int64_t start, std::int64_t end, std::uint64_t pfs_read,
                 std::uint64_t insys_write) {
  JobRecord job;
  job.job_id = static_cast<std::uint64_t>(start);
  job.nprocs = 1;
  job.nnodes = 1;
  darshan::Runtime rt(job, {{"/gpfs/alpine", "gpfs"}, {"/mnt/bb", "xfs"}});
  if (pfs_read > 0) {
    auto h = rt.open_file(ModuleId::kPosix, 0, "/gpfs/alpine/in.bin", 0);
    rt.record_reads(h, 0, kMB, pfs_read / kMB, 0, 1.0);
  }
  if (insys_write > 0) {
    auto h = rt.open_file(ModuleId::kStdio, 0, "/mnt/bb/out.dat", 0);
    rt.record_writes(h, 0, kMB, insys_write / kMB, 0, 1.0);
  }
  return rt.finalize(start, end);
}

TEST(LoadTimeline, SpreadsBytesOverTheJobWindow) {
  LoadTimeline tl(/*horizon=*/1000, /*buckets=*/10);  // 100 s buckets
  // A log spanning [100, 300): buckets 1 and 2.
  tl.add_log(log_with(100, 300, 200 * kMB, 0));
  EXPECT_EQ(tl.bucket(1).active_logs, 1u);
  EXPECT_EQ(tl.bucket(2).active_logs, 1u);
  EXPECT_EQ(tl.bucket(0).active_logs, 0u);
  const auto pfs = static_cast<std::size_t>(Layer::kPfs);
  EXPECT_DOUBLE_EQ(tl.bucket(1).read_bytes[pfs], 100.0 * kMB);
  EXPECT_DOUBLE_EQ(tl.bucket(2).read_bytes[pfs], 100.0 * kMB);
  // Throughput: 200 MB over 2 busy buckets of 100 s -> 1 MB/s.
  EXPECT_NEAR(tl.mean_throughput(Layer::kPfs, true), 1.0 * kMB, 1.0);
  EXPECT_NEAR(tl.peak_throughput(Layer::kPfs, true), 1.0 * kMB, 1.0);
}

TEST(LoadTimeline, LayersAreSeparated) {
  LoadTimeline tl(1000, 10);
  tl.add_log(log_with(0, 100, 50 * kMB, 70 * kMB));
  EXPECT_GT(tl.mean_throughput(Layer::kPfs, true), 0.0);
  EXPECT_DOUBLE_EQ(tl.mean_throughput(Layer::kPfs, false), 0.0);
  EXPECT_GT(tl.mean_throughput(Layer::kInSystem, false), 0.0);
  EXPECT_DOUBLE_EQ(tl.mean_throughput(Layer::kInSystem, true), 0.0);
}

TEST(LoadTimeline, ConcurrencyAndBusyFraction) {
  LoadTimeline tl(1000, 10);
  tl.add_log(log_with(0, 500, 10 * kMB, 0));    // buckets 0-4
  tl.add_log(log_with(200, 400, 10 * kMB, 0));  // buckets 2-3
  EXPECT_EQ(tl.peak_concurrency(), 2u);
  EXPECT_DOUBLE_EQ(tl.busy_fraction(), 0.5);
}

TEST(LoadTimeline, ClampsOutOfHorizonJobs) {
  LoadTimeline tl(1000, 10);
  tl.add_log(log_with(900, 5000, 100 * kMB, 0));  // runs past the horizon
  EXPECT_EQ(tl.bucket(9).active_logs, 1u);
  EXPECT_EQ(tl.peak_concurrency(), 1u);
}

TEST(LoadTimeline, MergeEqualsSequential) {
  LoadTimeline a(1000, 10), b(1000, 10), all(1000, 10);
  for (int i = 0; i < 8; ++i) {
    const LogData log = log_with(i * 100, i * 100 + 150, 30 * kMB, 10 * kMB);
    (i % 2 ? a : b).add_log(log);
    all.add_log(log);
  }
  a.merge(b);
  EXPECT_EQ(a.peak_concurrency(), all.peak_concurrency());
  EXPECT_DOUBLE_EQ(a.mean_throughput(Layer::kPfs, true),
                   all.mean_throughput(Layer::kPfs, true));
  EXPECT_DOUBLE_EQ(a.busy_fraction(), all.busy_fraction());
}

TEST(LoadTimeline, MergeRejectsShapeMismatch) {
  LoadTimeline a(1000, 10), b(1000, 20);
  EXPECT_THROW(a.merge(b), util::ConfigError);
}

TEST(LoadTimeline, RejectsBadConstruction) {
  EXPECT_THROW((void)LoadTimeline(0, 10), util::ConfigError);
  EXPECT_THROW((void)LoadTimeline(100, 0), util::ConfigError);
}

}  // namespace
}  // namespace mlio::core
