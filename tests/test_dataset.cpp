#include "core/dataset.hpp"

#include <gtest/gtest.h>

#include "darshan/counters.hpp"
#include "darshan/runtime.hpp"
#include "util/units.hpp"

namespace mlio::core {
namespace {

using darshan::FileHandle;
using darshan::JobRecord;
using darshan::kSharedRank;
using darshan::LogData;
using darshan::ModuleId;
using darshan::MountEntry;
using darshan::Runtime;
using util::kMB;

JobRecord job(std::uint32_t nprocs = 4) {
  JobRecord j;
  j.job_id = 1;
  j.nprocs = nprocs;
  j.nnodes = 1;
  return j;
}

std::vector<MountEntry> summit_mounts() {
  return {{"/gpfs/alpine", "gpfs"}, {"/mnt/bb", "xfs"}};
}

TEST(Dataset, LayerAttributionByMountPrefix) {
  Runtime rt(job(1), summit_mounts());
  auto h1 = rt.open_file(ModuleId::kPosix, 0, "/gpfs/alpine/a.bin", 0);
  rt.record_reads(h1, 0, kMB, 1, 0, 0.1);
  auto h2 = rt.open_file(ModuleId::kStdio, 0, "/mnt/bb/b.log", 0);
  rt.record_writes(h2, 0, 100, 1, 0, 0.1);
  const LogData log = rt.finalize(0, 1);

  const auto files = summarize_log(log);
  ASSERT_EQ(files.size(), 2u);
  for (const auto& f : files) {
    if (f.path == "/gpfs/alpine/a.bin") EXPECT_EQ(f.layer, Layer::kPfs);
    else EXPECT_EQ(f.layer, Layer::kInSystem);
  }
}

TEST(Dataset, UnattributedPathsAreDroppedAndCounted) {
  LogData log;
  log.job = job(1);
  log.mounts = summit_mounts();
  darshan::FileRecord rec(darshan::hash_record_id("/home/u/x"), 0, ModuleId::kPosix);
  rec.counters[darshan::posix::BYTES_READ] = 10;
  log.names.add(rec.record_id, "/home/u/x");
  log.records.push_back(rec);

  std::uint64_t dropped = 0;
  const auto files = summarize_log(log, &dropped);
  EXPECT_TRUE(files.empty());
  EXPECT_EQ(dropped, 1u);
}

TEST(Dataset, PosixPreferredOverStdioWhenBothPresent) {
  // §3.1: a file seen by POSIX (or MPI-IO) is analyzed through POSIX even if
  // STDIO also touched it.
  Runtime rt(job(1), summit_mounts());
  auto hp = rt.open_file(ModuleId::kPosix, 0, "/gpfs/alpine/x.dat", 0);
  rt.record_reads(hp, 0, kMB, 8, 0, 0.5);
  auto hs = rt.open_file(ModuleId::kStdio, 0, "/gpfs/alpine/x.dat", 0);
  rt.record_reads(hs, 0, 128, 3, 0, 0.1);
  const LogData log = rt.finalize(0, 1);

  const auto files = summarize_log(log);
  ASSERT_EQ(files.size(), 1u);
  EXPECT_EQ(files[0].data_iface, DataInterface::kPosix);
  EXPECT_EQ(files[0].bytes_read, 8 * kMB);
  EXPECT_TRUE(files[0].used_posix);
  EXPECT_TRUE(files[0].used_stdio);
}

TEST(Dataset, StdioManagedFileUsesStdioCounters) {
  Runtime rt(job(1), summit_mounts());
  auto h = rt.open_file(ModuleId::kStdio, 0, "/mnt/bb/s.rst", 0);
  rt.record_writes(h, 0, 256, 1000, 0, 2.0);
  const LogData log = rt.finalize(0, 1);
  const auto files = summarize_log(log);
  ASSERT_EQ(files.size(), 1u);
  EXPECT_EQ(files[0].data_iface, DataInterface::kStdio);
  EXPECT_EQ(files[0].bytes_written, 256000u);
  EXPECT_DOUBLE_EQ(files[0].write_time, 2.0);
  // STDIO has no request histogram.
  for (const auto v : files[0].req_write) EXPECT_EQ(v, 0u);
}

TEST(Dataset, SharedFlagComesFromSharedRecord) {
  Runtime rt(job(4), summit_mounts());
  for (std::int32_t r = 0; r < 4; ++r) {
    auto h = rt.open_file(ModuleId::kPosix, r, "/gpfs/alpine/shared.h5", 0);
    rt.record_reads(h, r, kMB, 1, 0, 1.0);
  }
  auto hp = rt.open_file(ModuleId::kPosix, 0, "/gpfs/alpine/private.h5", 0);
  rt.record_reads(hp, 0, kMB, 1, 0, 1.0);
  const LogData log = rt.finalize(0, 1);

  const auto files = summarize_log(log);
  ASSERT_EQ(files.size(), 2u);
  for (const auto& f : files) {
    if (f.path == "/gpfs/alpine/shared.h5") EXPECT_TRUE(f.shared);
    else EXPECT_FALSE(f.shared);
  }
}

TEST(Dataset, PerRankRecordsAggregate) {
  Runtime rt(job(8), summit_mounts());
  for (std::int32_t r = 0; r < 3; ++r) {  // partial access: stays per-rank
    auto h = rt.open_file(ModuleId::kPosix, r, "/gpfs/alpine/p.bin", 0);
    rt.record_writes(h, r, kMB, 2, 0, 0.25);
  }
  const LogData log = rt.finalize(0, 1);
  ASSERT_EQ(log.records.size(), 3u);

  const auto files = summarize_log(log);
  ASSERT_EQ(files.size(), 1u);  // one *file*
  EXPECT_EQ(files[0].bytes_written, 6 * kMB);
  EXPECT_FALSE(files[0].shared);
  EXPECT_EQ(files[0].req_write[4], 6u);  // 1 MB ops in the 100K-1M bin (inclusive), summed
}

TEST(Dataset, RequestHistogramsComeFromPosix) {
  Runtime rt(job(1), summit_mounts());
  auto h = rt.open_file(ModuleId::kPosix, 0, "/gpfs/alpine/h.bin", 0);
  rt.record_reads(h, 0, 50, 7, 0, 0.1);       // bin 0
  rt.record_reads(h, 0, 5000, 2, 0, 0.1);     // bin 2
  const LogData log = rt.finalize(0, 1);
  const auto files = summarize_log(log);
  ASSERT_EQ(files.size(), 1u);
  EXPECT_EQ(files[0].req_read[0], 7u);
  EXPECT_EQ(files[0].req_read[2], 2u);
}

TEST(Dataset, LustreRecordsDoNotCreateFiles) {
  Runtime rt(job(1), {{"/global/cscratch1", "lustre"}});
  rt.record_lustre("/global/cscratch1/x.h5", 1 << 20, 4, 0, 5, 248);
  const LogData log = rt.finalize(0, 1);
  EXPECT_TRUE(summarize_log(log).empty());
}

TEST(Dataset, OutputIsSortedByRecordId) {
  Runtime rt(job(1), summit_mounts());
  for (int i = 0; i < 50; ++i) {
    auto h = rt.open_file(ModuleId::kPosix, 0, "/gpfs/alpine/f" + std::to_string(i), 0);
    rt.record_reads(h, 0, 100, 1, 0, 0.1);
  }
  const auto files = summarize_log(rt.finalize(0, 1));
  for (std::size_t i = 1; i < files.size(); ++i) {
    EXPECT_LT(files[i - 1].record_id, files[i].record_id);
  }
}

}  // namespace
}  // namespace mlio::core
