#include "darshan/log_format.hpp"

#include <gtest/gtest.h>

#include <filesystem>

#include "darshan/counters.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace mlio::darshan {
namespace {

LogData random_log(std::uint64_t seed, std::size_t n_records) {
  util::Rng rng(seed);
  LogData log;
  log.job.job_id = rng.next();
  log.job.user_id = static_cast<std::uint32_t>(rng.uniform_u64(1, 1 << 20));
  log.job.nprocs = static_cast<std::uint32_t>(rng.uniform_u64(1, 4096));
  log.job.nnodes = std::max(1u, log.job.nprocs / 42);
  log.job.start_time = static_cast<std::int64_t>(rng.uniform_u64(0, 1u << 30));
  log.job.end_time = log.job.start_time + static_cast<std::int64_t>(rng.uniform_u64(1, 86400));
  log.job.exe = "exe_" + std::to_string(rng.next() & 0xffff);
  log.job.metadata["domain"] = "Physics";
  log.job.metadata["machine"] = "Summit";
  log.mounts = {{"/gpfs/alpine", "gpfs"}, {"/mnt/bb", "xfs"}};

  for (std::size_t i = 0; i < n_records; ++i) {
    const auto mod = static_cast<ModuleId>(rng.uniform_u64(0, 3));
    const std::string path = "/gpfs/alpine/f" + std::to_string(i);
    FileRecord rec(hash_record_id(path), i % 3 == 0 ? kSharedRank
                                                    : static_cast<std::int32_t>(i % 7),
                   mod);
    log.names.add(rec.record_id, path);
    for (auto& c : rec.counters) c = static_cast<std::int64_t>(rng.next() >> 16);
    for (auto& f : rec.fcounters) f = rng.uniform_real(0, 1e6);
    log.records.push_back(std::move(rec));
  }
  return log;
}

TEST(LogFormat, RoundtripCompressed) {
  const LogData log = random_log(1, 25);
  const auto bytes = write_log_bytes(log);
  const LogData back = read_log_bytes(bytes);
  EXPECT_TRUE(log == back);
}

TEST(LogFormat, RoundtripUncompressed) {
  const LogData log = random_log(2, 10);
  WriteOptions opts;
  opts.compress = false;
  const auto bytes = write_log_bytes(log, opts);
  EXPECT_TRUE(log == read_log_bytes(bytes));
}

TEST(LogFormat, RoundtripEmptyLog) {
  LogData log;
  log.job.job_id = 9;
  EXPECT_TRUE(log == read_log_bytes(write_log_bytes(log)));
}

TEST(LogFormat, CompressionShrinksTypicalLogs) {
  const LogData log = random_log(3, 200);
  WriteOptions raw;
  raw.compress = false;
  EXPECT_LT(write_log_bytes(log).size(), write_log_bytes(log, raw).size());
}

TEST(LogFormat, BadMagicThrows) {
  auto bytes = write_log_bytes(random_log(4, 1));
  bytes[0] = std::byte{0x00};
  EXPECT_THROW(read_log_bytes(bytes), util::FormatError);
}

TEST(LogFormat, BadVersionThrows) {
  auto bytes = write_log_bytes(random_log(5, 1));
  bytes[4] = std::byte{0x7f};
  EXPECT_THROW(read_log_bytes(bytes), util::FormatError);
}

TEST(LogFormat, CorruptBodyThrows) {
  auto bytes = write_log_bytes(random_log(6, 20));
  bytes[bytes.size() - 5] ^= std::byte{0xff};
  EXPECT_THROW(read_log_bytes(bytes), util::FormatError);
}

TEST(LogFormat, CrcCatchesUncompressedCorruption) {
  WriteOptions raw;
  raw.compress = false;
  auto bytes = write_log_bytes(random_log(7, 5), raw);
  bytes[bytes.size() - 1] ^= std::byte{0x01};
  EXPECT_THROW(read_log_bytes(bytes), util::FormatError);
}

TEST(LogFormat, TruncatedBodyThrows) {
  auto bytes = write_log_bytes(random_log(8, 20));
  bytes.resize(bytes.size() / 2);
  EXPECT_THROW(read_log_bytes(bytes), util::FormatError);
}

TEST(LogFormat, FileRoundtrip) {
  namespace fs = std::filesystem;
  const LogData log = random_log(9, 40);
  const fs::path path = fs::temp_directory_path() / "mlio_test_log.darshan";
  write_log_file(log, path);
  const LogData back = read_log_file(path);
  EXPECT_TRUE(log == back);
  fs::remove(path);
}

TEST(LogFormat, MissingFileThrows) {
  EXPECT_THROW(read_log_file("/nonexistent/dir/x.darshan"), util::Error);
}

// Property sweep: roundtrip holds across log shapes and record counts.
class LogFormatProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LogFormatProperty, RoundtripManyShapes) {
  for (std::uint64_t seed = 100; seed < 105; ++seed) {
    const LogData log = random_log(seed * 7 + GetParam(), GetParam());
    EXPECT_TRUE(log == read_log_bytes(write_log_bytes(log)));
  }
}

INSTANTIATE_TEST_SUITE_P(RecordCounts, LogFormatProperty,
                         ::testing::Values(0u, 1u, 2u, 17u, 64u, 257u, 1024u));

}  // namespace
}  // namespace mlio::darshan
