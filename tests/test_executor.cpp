#include "iosim/executor.hpp"

#include <gtest/gtest.h>

#include <span>

#include "darshan/counters.hpp"
#include "darshan/log_format.hpp"
#include "util/error.hpp"
#include "util/units.hpp"
#include "workload/generator.hpp"
#include "workload/pipeline.hpp"

namespace mlio::sim {
namespace {

using darshan::FileRecord;
using darshan::kSharedRank;
using darshan::LogData;
using darshan::ModuleId;
using util::kGiB;
using util::kMB;
using util::kMiB;

JobSpec base_spec() {
  JobSpec spec;
  spec.job_id = 42;
  spec.user_id = 7;
  spec.nprocs = 8;
  spec.nnodes = 1;
  spec.exe = "test_app";
  spec.domain = "Physics";
  spec.seed = 1234;
  return spec;
}

std::uint64_t total_counter(const LogData& log, ModuleId mod, std::size_t idx) {
  std::uint64_t total = 0;
  for (const auto& r : log.records) {
    if (r.module == mod) total += static_cast<std::uint64_t>(r.counters[idx]);
  }
  return total;
}

TEST(Executor, ByteTotalsMatchTheSpec) {
  const Machine m = Machine::summit();
  const JobExecutor ex(m);
  JobSpec spec = base_spec();
  FileAccessSpec f;
  f.path = "/gpfs/alpine/p/data.bin";
  f.iface = Interface::kPosix;
  f.read_bytes = 10 * kMB;
  f.write_bytes = 3 * kMB;
  f.read_op_size = 1 * kMB;
  f.write_op_size = 512 * 1000;
  spec.files.push_back(f);

  const LogData log = ex.execute(spec);
  EXPECT_EQ(total_counter(log, ModuleId::kPosix, darshan::posix::BYTES_READ), 10 * kMB);
  EXPECT_EQ(total_counter(log, ModuleId::kPosix, darshan::posix::BYTES_WRITTEN), 3 * kMB);
  EXPECT_EQ(log.job.job_id, 42u);
  EXPECT_EQ(log.job.metadata.at("domain"), "Physics");
  EXPECT_EQ(log.job.metadata.at("machine"), "Summit");
  EXPECT_GT(log.job.end_time, log.job.start_time);
}

TEST(Executor, SharedFileReducesToSharedRecord) {
  const Machine m = Machine::summit();
  const JobExecutor ex(m);
  JobSpec spec = base_spec();
  FileAccessSpec f;
  f.path = "/gpfs/alpine/p/shared.h5";
  f.shared = true;
  f.read_bytes = 64 * kMB;
  f.read_op_size = 1 * kMB;
  spec.files.push_back(f);

  const LogData log = ex.execute(spec);
  ASSERT_EQ(log.records.size(), 1u);
  EXPECT_EQ(log.records[0].rank, kSharedRank);
  EXPECT_EQ(log.records[0].c(darshan::posix::BYTES_READ),
            static_cast<std::int64_t>(64 * kMB));
  EXPECT_GT(log.records[0].f(darshan::posix::F_READ_TIME), 0.0);
}

TEST(Executor, LargeJobSharedFileUsesDirectSharedPath) {
  const Machine m = Machine::summit();
  const JobExecutor ex(m);
  JobSpec spec = base_spec();
  spec.nprocs = 4096;  // above max_explicit_ranks
  spec.nnodes = 98;
  FileAccessSpec f;
  f.path = "/gpfs/alpine/p/big.h5";
  f.shared = true;
  f.write_bytes = 1 * kGiB;
  f.write_op_size = 16 * kMiB;
  spec.files.push_back(f);

  const LogData log = ex.execute(spec);
  ASSERT_EQ(log.records.size(), 1u);
  EXPECT_EQ(log.records[0].rank, kSharedRank);
}

TEST(Executor, MpiioMirrorsIntoPosix) {
  const Machine m = Machine::cori();
  const JobExecutor ex(m);
  JobSpec spec = base_spec();
  FileAccessSpec f;
  f.path = "/global/cscratch1/sd/x.h5";
  f.iface = Interface::kMpiIo;
  f.shared = true;
  f.collective = true;
  f.read_bytes = 32 * kMB;
  f.read_op_size = 64 * 1000;
  spec.files.push_back(f);

  const LogData log = ex.execute(spec);
  bool has_mpiio = false, has_posix = false, has_lustre = false;
  for (const auto& r : log.records) {
    has_mpiio |= r.module == ModuleId::kMpiIo;
    has_posix |= r.module == ModuleId::kPosix;
    has_lustre |= r.module == ModuleId::kLustre;
  }
  EXPECT_TRUE(has_mpiio);
  EXPECT_TRUE(has_posix);
  EXPECT_TRUE(has_lustre);  // Lustre geometry record on Cori's PFS
  EXPECT_EQ(total_counter(log, ModuleId::kMpiIo, darshan::mpiio::BYTES_READ), 32 * kMB);
  EXPECT_EQ(total_counter(log, ModuleId::kPosix, darshan::posix::BYTES_READ), 32 * kMB);
  // Collective buffering: the tiny 64 KB application requests reach POSIX as
  // multi-MB aggregated transfers (each of the 8 ranks carries 4 MB here, so
  // the aggregated request lands in the 1M-4M bin, not in 10K-100K).
  EXPECT_GT(total_counter(log, ModuleId::kPosix, darshan::posix::SIZE_READ_1M_4M), 0u);
  EXPECT_EQ(total_counter(log, ModuleId::kPosix, darshan::posix::SIZE_READ_10K_100K), 0u);
}

TEST(Executor, StdioFileProducesOnlyStdioRecord) {
  const Machine m = Machine::summit();
  const JobExecutor ex(m);
  JobSpec spec = base_spec();
  FileAccessSpec f;
  f.path = "/mnt/bb/out.log";
  f.iface = Interface::kStdio;
  f.write_bytes = 1 * kMB;
  f.write_op_size = 256;
  spec.files.push_back(f);

  const LogData log = ex.execute(spec);
  ASSERT_GE(log.records.size(), 1u);
  for (const auto& r : log.records) EXPECT_EQ(r.module, ModuleId::kStdio);
  EXPECT_EQ(total_counter(log, ModuleId::kStdio, darshan::stdio::BYTES_WRITTEN), 1 * kMB);
}

TEST(Executor, PathOutsideMountsThrows) {
  const Machine m = Machine::summit();
  const JobExecutor ex(m);
  JobSpec spec = base_spec();
  FileAccessSpec f;
  f.path = "/home/user/oops.txt";
  f.read_bytes = 100;
  spec.files.push_back(f);
  EXPECT_THROW(ex.execute(spec), util::ConfigError);
}

TEST(Executor, DeterministicAcrossRuns) {
  const Machine m = Machine::cori();
  const JobExecutor ex(m);
  JobSpec spec = base_spec();
  for (int i = 0; i < 10; ++i) {
    FileAccessSpec f;
    f.path = "/global/cscratch1/f" + std::to_string(i) + ".bin";
    f.read_bytes = static_cast<std::uint64_t>(i + 1) * kMB;
    f.read_op_size = 64 * 1000;
    f.shared = i % 2 == 0;
    spec.files.push_back(f);
  }
  EXPECT_TRUE(ex.execute(spec) == ex.execute(spec));
}

TEST(Executor, StagingReportCoversDirectives) {
  const Machine m = Machine::cori();
  const JobExecutor ex(m);
  JobSpec spec = base_spec();
  spec.dw.capacity_request = 100 * kGiB;
  spec.dw.stage_in.push_back({"/var/opt/cray/dws/in", "/global/cscratch1/in", 50 * kGiB});
  spec.dw.stage_out.push_back({"/var/opt/cray/dws/out", "/global/cscratch1/out", 10 * kGiB});

  const StagingReport rep = ex.estimate_staging(spec);
  EXPECT_EQ(rep.bytes_in, 50 * kGiB);
  EXPECT_EQ(rep.bytes_out, 10 * kGiB);
  EXPECT_GT(rep.seconds_in, 0.0);
  EXPECT_GT(rep.seconds_out, 0.0);
  // Staging runs at bulk-transfer rates: 50 GiB should take seconds-to-
  // minutes, not hours.
  EXPECT_LT(rep.seconds_in, 3600.0);
}

TEST(Executor, EmptyDirectivesReportZero) {
  const Machine m = Machine::summit();
  const JobExecutor ex(m);
  const StagingReport rep = ex.estimate_staging(base_spec());
  EXPECT_EQ(rep.bytes_in + rep.bytes_out, 0u);
  EXPECT_DOUBLE_EQ(rep.seconds_in + rep.seconds_out, 0.0);
}

// --- Golden digests -------------------------------------------------------
//
// Hash the serialized (uncompressed) log stream of a fixed (system, seed,
// jobs) matrix.  The digests below were pinned on the pre-refactor executor;
// any hot-path restructuring (path interning, batched rank emission, layer
// tables) must keep every byte of every generated log identical, so these
// values must never change without an explicit format/population bump.
// The name map serializes in insertion order, so the digests additionally
// pin the first-touch order of file paths.

std::uint64_t fnv1a(std::span<const std::byte> bytes, std::uint64_t h) {
  for (const std::byte b : bytes) {
    h ^= static_cast<std::uint64_t>(b);
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t population_digest(const wl::SystemProfile& profile, std::uint64_t seed,
                                std::uint64_t jobs, const ExecutorConfig& cfg = {}) {
  wl::GeneratorConfig gc;
  gc.seed = seed;
  gc.n_jobs = jobs;
  gc.logs_per_job_scale = 0.25;
  gc.files_per_log_scale = 0.25;
  const wl::WorkloadGenerator gen(profile, gc);
  const JobExecutor ex(wl::machine_for(profile), cfg);
  darshan::WriteOptions wopts;
  wopts.compress = false;
  darshan::LogData log;
  darshan::LogIoBuffers io;
  std::uint64_t h = 1469598103934665603ull;
  gen.generate_bulk_range(0, jobs, [&](const JobSpec& spec) {
    ex.execute_into(spec, log);
    h = fnv1a(darshan::write_log_bytes_into(log, io, wopts), h);
  });
  return h;
}

TEST(Executor, GoldenDigestSummit) {
  EXPECT_EQ(population_digest(wl::SystemProfile::summit_2020(), 42, 12), 16000429662034926591ull);
}

TEST(Executor, GoldenDigestCori) {
  EXPECT_EQ(population_digest(wl::SystemProfile::cori_2019(), 42, 12), 11797263441408983634ull);
}

TEST(Executor, GoldenDigestSecondSeed) {
  EXPECT_EQ(population_digest(wl::SystemProfile::summit_2020(), 7, 5), 4330737685399424862ull);
  EXPECT_EQ(population_digest(wl::SystemProfile::cori_2019(), 7, 5), 14172711066723879781ull);
}

TEST(Executor, GoldenDigestPerRankBaseline) {
  // The per-rank emission baseline (seed hot path: per-rank loops, per-access
  // perf resolution, seed finalize) must produce the exact bytes the batched
  // path does — pinned to the same golden digests.
  ExecutorConfig cfg;
  cfg.emission = ExecutorConfig::Emission::kPerRank;
  EXPECT_EQ(population_digest(wl::SystemProfile::summit_2020(), 42, 12, cfg),
            16000429662034926591ull);
  EXPECT_EQ(population_digest(wl::SystemProfile::cori_2019(), 42, 12, cfg),
            11797263441408983634ull);
}

TEST(Executor, GoldenDigestWithExtensions) {
  // DXT traces and SSDEXT records ride the same hot path; pin them too.
  ExecutorConfig cfg;
  cfg.enable_dxt = true;
  cfg.enable_ssd_ext = true;
  EXPECT_EQ(population_digest(wl::SystemProfile::summit_2020(), 1234, 6, cfg), 8480845263817154199ull);
  EXPECT_EQ(population_digest(wl::SystemProfile::cori_2019(), 1234, 6, cfg), 12078485423183031340ull);
}

TEST(Executor, InvalidSpecThrows) {
  const Machine m = Machine::summit();
  const JobExecutor ex(m);
  JobSpec spec = base_spec();
  spec.nprocs = 0;
  EXPECT_THROW(ex.execute(spec), util::ConfigError);
}

}  // namespace
}  // namespace mlio::sim
