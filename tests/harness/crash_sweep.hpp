// Reusable crash-consistency sweep for archive workloads.
//
// The harness runs a workload once on a fault-free FaultVfs to count its
// file-system ops and to record every *committed state* (the query result
// right after each manifest publish).  It then re-runs the workload once
// per op index with a crash point planted there, simulating the power cut
// with the bytes a real crash would leave (util/vfs.hpp), and after each
// simulated crash reopens the directory on the real filesystem and checks
// the archive's whole durability contract:
//
//   * the manifest either does not exist yet (only possible while the very
//     first publish is still in flight) or loads and passes verify(--deep);
//   * the query result equals one of the committed states — partial work is
//     never observable;
//   * `.tmp` litter is inert: deleting it changes nothing.
//
// Every sampled crash point is also replayed in a fresh directory and the
// resulting directory contents compared byte-for-byte — a failing
// (seed, crash-index) pair printed by a test reproduces its exact failure.
//
// Workload contract: `workload(dir, vfs)` must create/open the archive in
// `dir` itself, route ALL file I/O through `vfs`, and be deterministic
// (same op sequence every run).  Keep workloads tiny — the sweep is
// quadratic in the op count by construction.
#pragma once

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <string>
#include <vector>

#include "archive/archive.hpp"
#include "archive/query.hpp"
#include "core/snapshot.hpp"
#include "util/byte_io.hpp"
#include "util/compress.hpp"
#include "util/vfs.hpp"

namespace mlio::harness {

struct CrashSweepOptions {
  std::uint64_t seed = 1;
  /// Threads for the post-crash query (1 keeps the sweep fast; >1 also
  /// exercises the parallel shard rebuild after every crash).
  unsigned query_threads = 1;
  /// Replay every Nth crash point in a fresh directory and require the
  /// identical outcome (0 disables the determinism cross-check).
  std::uint64_t replay_stride = 9;
};

struct CrashSweepReport {
  std::uint64_t total_ops = 0;
  std::uint64_t crash_points = 0;
  std::uint64_t committed_states = 0;
  std::uint64_t replays_checked = 0;
  /// Each entry carries the (seed, crash-at) pair needed to replay it.
  std::vector<std::string> failures;
  bool ok() const { return failures.empty(); }
  std::string summary() const {
    std::string s;
    for (const std::string& f : failures) s += f + "\n";
    return s;
  }
};

using CrashWorkload = std::function<void(const std::filesystem::path&, util::Vfs&)>;

namespace detail {

inline std::vector<std::byte> query_state(archive::Archive& ar, unsigned threads) {
  archive::QueryOptions opts;
  opts.threads = threads;
  opts.write_snapshots = false;  // the check must never mutate the archive
  return core::write_snapshot_bytes(query_archive(ar, opts).analysis, 0);
}

/// Order-independent digest of a directory: sorted (filename, size, crc).
inline std::uint64_t dir_digest(const std::filesystem::path& dir) {
  namespace fs = std::filesystem;
  std::vector<fs::path> entries;
  for (const fs::directory_entry& e : fs::directory_iterator(dir)) {
    if (e.is_regular_file()) entries.push_back(e.path());
  }
  std::sort(entries.begin(), entries.end());
  std::uint64_t h = 0xcbf29ce484222325ull;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ull;
  };
  for (const fs::path& p : entries) {
    for (const char c : p.filename().string()) mix(static_cast<std::uint8_t>(c));
    const std::vector<std::byte> bytes = util::read_file_bytes(p);
    mix(bytes.size());
    mix(util::crc32(bytes));
  }
  return h;
}

struct CrashOutcome {
  bool crashed = false;
  bool has_manifest = false;
  std::uint64_t fs_digest = 0;        ///< directory digest right after the crash
  std::vector<std::byte> state;       ///< post-crash query result (when manifest loads)
  std::string error;                  ///< first invariant violation, empty if none
};

inline CrashOutcome run_crash(const std::filesystem::path& dir, const CrashWorkload& workload,
                              std::uint64_t seed, std::uint64_t crash_at,
                              unsigned query_threads) {
  namespace fs = std::filesystem;
  fs::remove_all(dir);
  fs::create_directories(dir);

  util::FaultPlan plan;
  plan.seed = seed;
  plan.crash_at = static_cast<std::int64_t>(crash_at);
  util::FaultVfs vfs(plan);

  CrashOutcome out;
  try {
    workload(dir, vfs);
  } catch (const util::SimulatedCrash&) {
    out.crashed = true;
  }
  out.fs_digest = dir_digest(dir);
  out.has_manifest = fs::exists(dir / "manifest.bin");
  if (!out.has_manifest) return out;

  try {
    archive::Archive ar = archive::Archive::open(dir);
    const archive::Archive::VerifyReport rep = ar.verify(true);
    if (!rep.ok()) {
      out.error = "verify --deep failed: " + rep.issues.front();
      return out;
    }
    out.state = query_state(ar, query_threads);

    // `.tmp` litter must be inert: with it gone, the archive still verifies
    // and answers identically.
    bool removed_tmp = false;
    for (const fs::directory_entry& e : fs::directory_iterator(dir)) {
      if (e.path().extension() == ".tmp") {
        fs::remove(e.path());
        removed_tmp = true;
      }
    }
    if (removed_tmp) {
      archive::Archive clean = archive::Archive::open(dir);
      if (!clean.verify(true).ok()) {
        out.error = "verify failed after deleting .tmp litter";
      } else if (query_state(clean, query_threads) != out.state) {
        out.error = "query result changed after deleting .tmp litter";
      }
    }
  } catch (const util::Error& e) {
    out.error = std::string("reopen after crash failed: ") + e.what();
  }
  return out;
}

}  // namespace detail

inline CrashSweepReport crash_sweep(const std::filesystem::path& root,
                                    const CrashWorkload& workload,
                                    const CrashSweepOptions& opts = {}) {
  namespace fs = std::filesystem;
  CrashSweepReport rep;
  fs::remove_all(root);
  fs::create_directories(root);

  // Pass 1: fault-free run.  Counts ops and snapshots the query result at
  // every manifest publish — the set of states a crash is allowed to expose.
  std::vector<std::vector<std::byte>> committed;
  std::int64_t first_commit_op = -1;
  {
    const fs::path dir = root / "clean";
    fs::create_directories(dir);
    util::FaultPlan plan;
    plan.seed = opts.seed;
    util::FaultVfs vfs(plan);
    vfs.after_op = [&](std::uint64_t idx, util::VfsOp op, const fs::path& path) {
      if (op != util::VfsOp::kRename || path.filename() != "manifest.bin") return;
      if (first_commit_op < 0) first_commit_op = static_cast<std::int64_t>(idx);
      archive::Archive ar = archive::Archive::open(dir);
      std::vector<std::byte> state = detail::query_state(ar, opts.query_threads);
      if (std::find(committed.begin(), committed.end(), state) == committed.end()) {
        committed.push_back(std::move(state));
      }
    };
    workload(dir, vfs);
    rep.total_ops = vfs.op_count();
  }
  rep.committed_states = committed.size();

  auto fail = [&](std::uint64_t crash_at, const std::string& what) {
    rep.failures.push_back("crash-at=" + std::to_string(crash_at) +
                           " seed=" + std::to_string(opts.seed) + ": " + what);
  };

  // Pass 2: crash at every op index, reopen, check the contract.
  for (std::uint64_t i = 0; i < rep.total_ops; ++i) {
    const detail::CrashOutcome out =
        detail::run_crash(root / "crash", workload, opts.seed, i, opts.query_threads);
    rep.crash_points += 1;

    if (!out.crashed) {
      fail(i, "crash point never fired (workload op sequence not deterministic?)");
      continue;
    }
    if (!out.error.empty()) {
      fail(i, out.error);
      continue;
    }
    if (!out.has_manifest) {
      // Only legal while the very first manifest publish is not yet durable
      // (its rename may land or not; the following dirsync may revert it).
      if (first_commit_op >= 0 && i > static_cast<std::uint64_t>(first_commit_op) + 1) {
        fail(i, "manifest vanished after it was first committed");
      }
      continue;
    }
    if (std::find(committed.begin(), committed.end(), out.state) == committed.end()) {
      fail(i, "query result matches no committed state (partial state observable)");
    }

    if (opts.replay_stride != 0 && i % opts.replay_stride == 0) {
      const detail::CrashOutcome again =
          detail::run_crash(root / "replay", workload, opts.seed, i, opts.query_threads);
      rep.replays_checked += 1;
      if (again.fs_digest != out.fs_digest || again.state != out.state ||
          again.error != out.error) {
        fail(i, "replay diverged: the same (seed, crash-index) must reproduce bit-identically");
      }
    }
  }
  return rep;
}

}  // namespace mlio::harness
