// Property tests for core::Analysis::merge — the algebra the archive's
// incremental queries stand on (DESIGN.md §6):
//   1. merging an empty shard is the identity, in either direction;
//   2. with FIXED cut points, the shard-order fold is a pure function of
//      the log stream — reproducible bit for bit, snapshot round-trips
//      included, and equal to the sequential accumulator in the one-shard
//      case;
//   3. every integer census is invariant under the choice of cuts (only
//      double-precision sums are grouping-sensitive, which is why the
//      archive pins its cuts instead of claiming full cut-invariance).
// These extend the PR-1 pipeline determinism pins from "blocks of jobs" to
// arbitrary contiguous partitions of the decoded log sequence.
#include <gtest/gtest.h>

#include <vector>

#include "core/analysis.hpp"
#include "core/performance.hpp"
#include "core/snapshot.hpp"
#include "darshan/log_format.hpp"
#include "util/byte_io.hpp"
#include "util/thread_pool.hpp"
#include "workload/pipeline.hpp"

namespace mlio::core {
namespace {

std::vector<darshan::LogData> sample_logs(std::uint64_t n_jobs, std::uint64_t seed) {
  wl::GeneratorConfig cfg;
  cfg.seed = seed;
  cfg.n_jobs = n_jobs;
  cfg.logs_per_job_scale = 0.2;
  cfg.files_per_log_scale = 0.2;
  const wl::WorkloadGenerator gen(wl::SystemProfile::summit_2020(), cfg);
  std::vector<darshan::LogData> logs;
  wl::serialize_logs(gen, wl::Stratum::kBulk, 0, n_jobs, {},
                     [&](const darshan::JobRecord&, std::span<const std::byte> frame) {
                       logs.push_back(darshan::read_log_bytes(frame));
                     });
  return logs;
}

Analysis analyze(const std::vector<darshan::LogData>& logs, std::size_t lo, std::size_t hi) {
  Analysis a;
  for (std::size_t i = lo; i < hi; ++i) a.add(logs[i]);
  return a;
}

/// Canonical state bytes — stronger than fingerprint equality.
std::vector<std::byte> state(const Analysis& a) { return write_snapshot_bytes(a, 0); }

TEST(MergeProperties, EmptyShardIsRightIdentity) {
  const auto logs = sample_logs(20, 5);
  Analysis a = analyze(logs, 0, logs.size());
  const std::vector<std::byte> before = state(a);
  a.merge(Analysis{});
  EXPECT_EQ(state(a), before);
}

TEST(MergeProperties, EmptyShardIsLeftIdentity) {
  const auto logs = sample_logs(20, 5);
  const Analysis a = analyze(logs, 0, logs.size());
  Analysis empty;
  empty.merge(a);
  EXPECT_EQ(state(empty), state(a));
}

TEST(MergeProperties, EmptyMergedWithEmptyStaysEmpty) {
  Analysis a;
  a.merge(Analysis{});
  EXPECT_EQ(state(a), state(Analysis{}));
  EXPECT_EQ(a.summary().logs(), 0u);
}

TEST(MergeProperties, SingleShardFoldEqualsSequential) {
  // Folding one sequential shard into an empty accumulator reproduces the
  // single-accumulator bits exactly — the degenerate case every multi-shard
  // contract builds on.
  const auto logs = sample_logs(40, 13);
  ASSERT_GE(logs.size(), 8u);
  const std::vector<std::byte> sequential = state(analyze(logs, 0, logs.size()));
  Analysis folded;
  folded.merge(analyze(logs, 0, logs.size()));
  EXPECT_EQ(state(folded), sequential);
}

TEST(MergeProperties, FixedCutsFoldIsReproducible) {
  // The archive's determinism contract (DESIGN.md §6): for a FIXED set of
  // cut points, the shard-order fold is a pure function of the log stream —
  // bit-identical across repeated evaluations and regardless of whether a
  // shard came straight from an accumulator or through a snapshot
  // round-trip (cache hit vs rescan).
  const auto logs = sample_logs(40, 13);
  ASSERT_GE(logs.size(), 8u);

  for (const std::size_t shards : {2u, 3u, 5u, 8u}) {
    auto fold = [&](bool via_snapshot) {
      Analysis merged;
      for (std::size_t s = 0; s < shards; ++s) {
        const std::size_t lo = logs.size() * s / shards;
        const std::size_t hi = logs.size() * (s + 1) / shards;
        Analysis shard = analyze(logs, lo, hi);
        if (via_snapshot && s % 2 == 0) {
          shard = read_snapshot_bytes(write_snapshot_bytes(shard, 0));
        }
        merged.merge(shard);
      }
      return state(merged);
    };
    const std::vector<std::byte> direct = fold(false);
    EXPECT_EQ(fold(false), direct) << "shards=" << shards;
    EXPECT_EQ(fold(true), direct) << "shards=" << shards;
  }
}

TEST(MergeProperties, IntegerCensusesAreGroupingInvariant) {
  // Every counting statistic — log/job/file censuses, interface counts,
  // exclusivity classes, histogram mass — must not depend on how the stream
  // was cut at all.  (Double-precision sums may differ in the last bits
  // across DIFFERENT cuts; that is exactly why the archive pins its cuts —
  // see DESIGN.md §6.)
  const auto logs = sample_logs(30, 21);
  ASSERT_GE(logs.size(), 10u);
  const Analysis sequential = analyze(logs, 0, logs.size());

  const std::size_t cut_sets[][4] = {
      {1, 2, logs.size() / 2, logs.size() - 1},
      {logs.size() / 3, logs.size() / 2, 0, 0},
  };
  for (const auto& cuts : cut_sets) {
    Analysis merged;
    std::size_t lo = 0;
    for (const std::size_t cut : cuts) {
      if (cut <= lo || cut > logs.size()) continue;
      merged.merge(analyze(logs, lo, cut));
      lo = cut;
    }
    merged.merge(analyze(logs, lo, logs.size()));

    EXPECT_EQ(merged.summary().logs(), sequential.summary().logs());
    EXPECT_EQ(merged.summary().jobs(), sequential.summary().jobs());
    EXPECT_EQ(merged.summary().files(), sequential.summary().files());
    EXPECT_EQ(merged.performance().observations(), sequential.performance().observations());
    for (std::size_t li = 0; li < kLayerCount; ++li) {
      const auto layer = static_cast<Layer>(li);
      EXPECT_EQ(merged.access().layer(layer).files, sequential.access().layer(layer).files);
      EXPECT_EQ(merged.interfaces().counts(layer).posix,
                sequential.interfaces().counts(layer).posix);
      EXPECT_EQ(merged.interfaces().counts(layer).stdio,
                sequential.interfaces().counts(layer).stdio);
    }
    const auto ex = merged.layers().job_exclusivity();
    const auto ex_seq = sequential.layers().job_exclusivity();
    EXPECT_EQ(ex.pfs_only, ex_seq.pfs_only);
    EXPECT_EQ(ex.insys_only, ex_seq.insys_only);
    EXPECT_EQ(ex.both, ex_seq.both);
    EXPECT_NEAR(merged.summary().node_hours(), sequential.summary().node_hours(),
                1e-9 * (1.0 + sequential.summary().node_hours()));
  }
}

TEST(MergeProperties, MergeIsAssociativeOverOrderedShards) {
  // (A ∘ B) ∘ C == A ∘ (B ∘ C) for adjacent shards — the query engine may
  // fold cached and rebuilt shards at different times.
  const auto logs = sample_logs(30, 34);
  ASSERT_GE(logs.size(), 6u);
  const std::size_t third = logs.size() / 3;
  const Analysis a = analyze(logs, 0, third);
  const Analysis b = analyze(logs, third, 2 * third);
  const Analysis c = analyze(logs, 2 * third, logs.size());

  Analysis left;
  left.merge(a);
  left.merge(b);
  left.merge(c);

  Analysis bc;
  bc.merge(b);
  bc.merge(c);
  Analysis right;
  right.merge(a);
  right.merge(bc);

  EXPECT_EQ(state(left), state(right));
}

TEST(MergeProperties, TreeMergeMatchesSerialFoldBitForBit) {
  // The acceptance bar for the parallel tree merge (DESIGN.md §12): for any
  // shard count and any thread count, Analysis::merge_ordered produces the
  // SAME BYTES as the serial partition-order fold — node-hours patched
  // serially, reservoirs below capacity, fixed tree shape.
  const auto logs = sample_logs(60, 47);
  ASSERT_GE(logs.size(), 16u);

  util::ThreadPool pool1(1);
  util::ThreadPool pool8(8);
  for (const std::size_t n_shards : {1u, 2u, 3u, 5u, 8u, 9u, 16u}) {
    std::vector<Analysis> shards(n_shards);
    std::vector<const Analysis*> ptrs;
    for (std::size_t s = 0; s < n_shards; ++s) {
      shards[s] = analyze(logs, logs.size() * s / n_shards, logs.size() * (s + 1) / n_shards);
      ptrs.push_back(&shards[s]);
    }
    Analysis serial;
    for (const Analysis* p : ptrs) serial.merge(*p);
    const std::vector<std::byte> expected = state(serial);

    MergeTreeStats ts{};
    EXPECT_EQ(state(Analysis::merge_ordered(ptrs, nullptr, &ts)), expected)
        << "serial merge_ordered, shards=" << n_shards;
    EXPECT_EQ(state(Analysis::merge_ordered(ptrs, &pool1, &ts)), expected)
        << "1-thread tree, shards=" << n_shards;
    EXPECT_EQ(state(Analysis::merge_ordered(ptrs, &pool8, &ts)), expected)
        << "8-thread tree, shards=" << n_shards;
    if (n_shards >= 2) {
      EXPECT_TRUE(ts.used_tree) << "shards=" << n_shards;
      EXPECT_FALSE(ts.reservoir_fallback) << "shards=" << n_shards;
    }
  }
}

TEST(MergeProperties, TreeMergePatchesSaturatedReservoirCells) {
  // Real archives saturate the hottest performance cells almost
  // immediately, so the tree cannot simply refuse them: merge_ordered must
  // keep the tree for the associative bulk and patch exactly the saturated
  // cells from a serial re-fold, still matching the serial fold bit for
  // bit.
  // Full-density logs (no files-per-log scaling): the same shape the
  // archive ingests, where the hot (layer, iface, bin) cells overflow their
  // reservoirs within a few dozen jobs.
  wl::GeneratorConfig cfg;
  cfg.seed = 51;
  cfg.n_jobs = 60;
  const wl::WorkloadGenerator gen(wl::SystemProfile::summit_2020(), cfg);
  std::vector<darshan::LogData> logs;
  wl::serialize_logs(gen, wl::Stratum::kBulk, 0, cfg.n_jobs, {},
                     [&](const darshan::JobRecord&, std::span<const std::byte> frame) {
                       logs.push_back(darshan::read_log_bytes(frame));
                     });
  ASSERT_GE(logs.size(), 8u);
  const std::size_t n_shards = 8;
  std::vector<Analysis> shards(n_shards);
  std::vector<const Analysis*> ptrs;
  std::vector<const Performance*> perfs;
  for (std::size_t s = 0; s < n_shards; ++s) {
    shards[s] = analyze(logs, logs.size() * s / n_shards, logs.size() * (s + 1) / n_shards);
    ptrs.push_back(&shards[s]);
    perfs.push_back(&shards[s].performance());
  }
  // The premise: this workload overflows at least one reservoir cell.  If
  // this ever fails the test has gone vacuous — raise the log count.
  ASSERT_FALSE(Performance::merge_is_exact(perfs));
  const std::vector<std::size_t> saturated = Performance::saturated_cells(perfs);
  ASSERT_FALSE(saturated.empty());

  Analysis serial;
  for (const Analysis* p : ptrs) serial.merge(*p);
  const std::vector<std::byte> expected = state(serial);

  util::ThreadPool pool8(8);
  MergeTreeStats ts{};
  EXPECT_EQ(state(Analysis::merge_ordered(ptrs, &pool8, &ts)), expected);
  EXPECT_TRUE(ts.used_tree);
  EXPECT_TRUE(ts.reservoir_fallback);
  EXPECT_EQ(ts.patched_cells, saturated.size());

  util::ThreadPool pool1(1);
  ts = MergeTreeStats{};
  EXPECT_EQ(state(Analysis::merge_ordered(ptrs, &pool1, &ts)), expected);
  EXPECT_TRUE(ts.used_tree);
}

TEST(MergeProperties, TreeMergeEmptyInputIsEmpty) {
  util::ThreadPool pool(4);
  const std::vector<const Analysis*> none;
  EXPECT_EQ(state(Analysis::merge_ordered(none, &pool)), state(Analysis{}));
}

TEST(MergeProperties, ReservoirGuardDetectsSaturation) {
  // Above reservoir capacity, ReservoirQuantiles::merge draws seeded
  // replacement samples whose outcome depends on merge ORDER — the one part
  // of the state that is not exactly associative.  merge_is_exact is the
  // gate the tree merge stands behind: it must pass while every cell's
  // combined count fits its reservoir and fail as soon as one would
  // overflow.
  FileSummary f;
  f.shared = true;
  f.layer = Layer::kPfs;
  f.data_iface = DataInterface::kPosix;
  f.bytes_read = 1 << 20;

  Performance a;
  Performance b;
  Performance c;
  for (int i = 0; i < 3000; ++i) {
    // Distinct bandwidths, all in one (layer, iface, bin, read) cell.
    f.read_time = 1.0 + 1e-4 * i;
    a.add(f);
    f.read_time = 2.0 + 1e-4 * i;
    b.add(f);
    f.read_time = 3.0 + 1e-4 * i;
    c.add(f);
  }
  const Performance* one[] = {&a};
  EXPECT_TRUE(Performance::merge_is_exact(one));  // 3000 observations fit 4096
  const Performance* pair[] = {&a, &b};
  EXPECT_FALSE(Performance::merge_is_exact(pair));  // 6000 do not

  // Demonstrate the non-associativity the guard exists for: past capacity,
  // (a ∘ b) ∘ c and a ∘ (b ∘ c) draw different replacement samples even
  // though both preserve left-to-right shard order — the intermediate b ∘ c
  // reservoir is already saturated, so the right association replays its
  // post-replacement samples instead of c's raw stream.
  Performance left = a;
  left.merge(b);
  left.merge(c);
  Performance bc = b;
  bc.merge(c);
  Performance right = a;
  right.merge(bc);
  util::ByteWriter wl;
  util::ByteWriter wr;
  left.save(wl);
  right.save(wr);
  EXPECT_NE(wl.take(), wr.take());
}

}  // namespace
}  // namespace mlio::core
