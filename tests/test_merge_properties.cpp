// Property tests for core::Analysis::merge — the algebra the archive's
// incremental queries stand on (DESIGN.md §6):
//   1. merging an empty shard is the identity, in either direction;
//   2. with FIXED cut points, the shard-order fold is a pure function of
//      the log stream — reproducible bit for bit, snapshot round-trips
//      included, and equal to the sequential accumulator in the one-shard
//      case;
//   3. every integer census is invariant under the choice of cuts (only
//      double-precision sums are grouping-sensitive, which is why the
//      archive pins its cuts instead of claiming full cut-invariance).
// These extend the PR-1 pipeline determinism pins from "blocks of jobs" to
// arbitrary contiguous partitions of the decoded log sequence.
#include <gtest/gtest.h>

#include <vector>

#include "core/analysis.hpp"
#include "core/snapshot.hpp"
#include "darshan/log_format.hpp"
#include "workload/pipeline.hpp"

namespace mlio::core {
namespace {

std::vector<darshan::LogData> sample_logs(std::uint64_t n_jobs, std::uint64_t seed) {
  wl::GeneratorConfig cfg;
  cfg.seed = seed;
  cfg.n_jobs = n_jobs;
  cfg.logs_per_job_scale = 0.2;
  cfg.files_per_log_scale = 0.2;
  const wl::WorkloadGenerator gen(wl::SystemProfile::summit_2020(), cfg);
  std::vector<darshan::LogData> logs;
  wl::serialize_logs(gen, wl::Stratum::kBulk, 0, n_jobs, {},
                     [&](const darshan::JobRecord&, std::span<const std::byte> frame) {
                       logs.push_back(darshan::read_log_bytes(frame));
                     });
  return logs;
}

Analysis analyze(const std::vector<darshan::LogData>& logs, std::size_t lo, std::size_t hi) {
  Analysis a;
  for (std::size_t i = lo; i < hi; ++i) a.add(logs[i]);
  return a;
}

/// Canonical state bytes — stronger than fingerprint equality.
std::vector<std::byte> state(const Analysis& a) { return write_snapshot_bytes(a, 0); }

TEST(MergeProperties, EmptyShardIsRightIdentity) {
  const auto logs = sample_logs(20, 5);
  Analysis a = analyze(logs, 0, logs.size());
  const std::vector<std::byte> before = state(a);
  a.merge(Analysis{});
  EXPECT_EQ(state(a), before);
}

TEST(MergeProperties, EmptyShardIsLeftIdentity) {
  const auto logs = sample_logs(20, 5);
  const Analysis a = analyze(logs, 0, logs.size());
  Analysis empty;
  empty.merge(a);
  EXPECT_EQ(state(empty), state(a));
}

TEST(MergeProperties, EmptyMergedWithEmptyStaysEmpty) {
  Analysis a;
  a.merge(Analysis{});
  EXPECT_EQ(state(a), state(Analysis{}));
  EXPECT_EQ(a.summary().logs(), 0u);
}

TEST(MergeProperties, SingleShardFoldEqualsSequential) {
  // Folding one sequential shard into an empty accumulator reproduces the
  // single-accumulator bits exactly — the degenerate case every multi-shard
  // contract builds on.
  const auto logs = sample_logs(40, 13);
  ASSERT_GE(logs.size(), 8u);
  const std::vector<std::byte> sequential = state(analyze(logs, 0, logs.size()));
  Analysis folded;
  folded.merge(analyze(logs, 0, logs.size()));
  EXPECT_EQ(state(folded), sequential);
}

TEST(MergeProperties, FixedCutsFoldIsReproducible) {
  // The archive's determinism contract (DESIGN.md §6): for a FIXED set of
  // cut points, the shard-order fold is a pure function of the log stream —
  // bit-identical across repeated evaluations and regardless of whether a
  // shard came straight from an accumulator or through a snapshot
  // round-trip (cache hit vs rescan).
  const auto logs = sample_logs(40, 13);
  ASSERT_GE(logs.size(), 8u);

  for (const std::size_t shards : {2u, 3u, 5u, 8u}) {
    auto fold = [&](bool via_snapshot) {
      Analysis merged;
      for (std::size_t s = 0; s < shards; ++s) {
        const std::size_t lo = logs.size() * s / shards;
        const std::size_t hi = logs.size() * (s + 1) / shards;
        Analysis shard = analyze(logs, lo, hi);
        if (via_snapshot && s % 2 == 0) {
          shard = read_snapshot_bytes(write_snapshot_bytes(shard, 0));
        }
        merged.merge(shard);
      }
      return state(merged);
    };
    const std::vector<std::byte> direct = fold(false);
    EXPECT_EQ(fold(false), direct) << "shards=" << shards;
    EXPECT_EQ(fold(true), direct) << "shards=" << shards;
  }
}

TEST(MergeProperties, IntegerCensusesAreGroupingInvariant) {
  // Every counting statistic — log/job/file censuses, interface counts,
  // exclusivity classes, histogram mass — must not depend on how the stream
  // was cut at all.  (Double-precision sums may differ in the last bits
  // across DIFFERENT cuts; that is exactly why the archive pins its cuts —
  // see DESIGN.md §6.)
  const auto logs = sample_logs(30, 21);
  ASSERT_GE(logs.size(), 10u);
  const Analysis sequential = analyze(logs, 0, logs.size());

  const std::size_t cut_sets[][4] = {
      {1, 2, logs.size() / 2, logs.size() - 1},
      {logs.size() / 3, logs.size() / 2, 0, 0},
  };
  for (const auto& cuts : cut_sets) {
    Analysis merged;
    std::size_t lo = 0;
    for (const std::size_t cut : cuts) {
      if (cut <= lo || cut > logs.size()) continue;
      merged.merge(analyze(logs, lo, cut));
      lo = cut;
    }
    merged.merge(analyze(logs, lo, logs.size()));

    EXPECT_EQ(merged.summary().logs(), sequential.summary().logs());
    EXPECT_EQ(merged.summary().jobs(), sequential.summary().jobs());
    EXPECT_EQ(merged.summary().files(), sequential.summary().files());
    EXPECT_EQ(merged.performance().observations(), sequential.performance().observations());
    for (std::size_t li = 0; li < kLayerCount; ++li) {
      const auto layer = static_cast<Layer>(li);
      EXPECT_EQ(merged.access().layer(layer).files, sequential.access().layer(layer).files);
      EXPECT_EQ(merged.interfaces().counts(layer).posix,
                sequential.interfaces().counts(layer).posix);
      EXPECT_EQ(merged.interfaces().counts(layer).stdio,
                sequential.interfaces().counts(layer).stdio);
    }
    const auto ex = merged.layers().job_exclusivity();
    const auto ex_seq = sequential.layers().job_exclusivity();
    EXPECT_EQ(ex.pfs_only, ex_seq.pfs_only);
    EXPECT_EQ(ex.insys_only, ex_seq.insys_only);
    EXPECT_EQ(ex.both, ex_seq.both);
    EXPECT_NEAR(merged.summary().node_hours(), sequential.summary().node_hours(),
                1e-9 * (1.0 + sequential.summary().node_hours()));
  }
}

TEST(MergeProperties, MergeIsAssociativeOverOrderedShards) {
  // (A ∘ B) ∘ C == A ∘ (B ∘ C) for adjacent shards — the query engine may
  // fold cached and rebuilt shards at different times.
  const auto logs = sample_logs(30, 34);
  ASSERT_GE(logs.size(), 6u);
  const std::size_t third = logs.size() / 3;
  const Analysis a = analyze(logs, 0, third);
  const Analysis b = analyze(logs, third, 2 * third);
  const Analysis c = analyze(logs, 2 * third, logs.size());

  Analysis left;
  left.merge(a);
  left.merge(b);
  left.merge(c);

  Analysis bc;
  bc.merge(b);
  bc.merge(c);
  Analysis right;
  right.merge(a);
  right.merge(bc);

  EXPECT_EQ(state(left), state(right));
}

}  // namespace
}  // namespace mlio::core
