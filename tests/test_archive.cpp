// End-to-end archive coverage: ingest -> query equals the in-memory
// pipeline byte-for-byte when partition cuts equal pipeline block cuts;
// snapshot caching serves repeat queries without rescanning a single
// partition; incremental ingests only scan what changed.
#include "archive/archive.hpp"

#include <gtest/gtest.h>

#include <filesystem>

#include "archive/ingest.hpp"
#include "archive/query.hpp"
#include "core/snapshot.hpp"
#include "util/byte_io.hpp"
#include "util/error.hpp"
#include "workload/pipeline.hpp"

namespace mlio::archive {
namespace {

namespace fs = std::filesystem;

class ArchiveTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) / "mlio_archive_test" /
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    fs::remove_all(dir_);
    fs::create_directories(dir_.parent_path());
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
};

wl::WorkloadGenerator make_gen(std::uint64_t n_jobs, std::uint64_t seed = 9) {
  wl::GeneratorConfig cfg;
  cfg.seed = seed;
  cfg.n_jobs = n_jobs;
  cfg.logs_per_job_scale = 0.2;
  cfg.files_per_log_scale = 0.2;
  return wl::WorkloadGenerator(wl::SystemProfile::cori_2019(), cfg);
}

std::vector<std::byte> state(const core::Analysis& a) {
  return core::write_snapshot_bytes(a, 0);
}

TEST_F(ArchiveTest, TwoBatchIngestQueryMatchesPipelineByteForByte) {
  // The acceptance pin: ingest the generated population in two batches and
  // the query result is byte-identical to a single run_pipeline pass over
  // the same seed.  This holds because both sides are left folds of
  // per-range sequential shards and the cuts coincide: two ingest batches
  // of 20 jobs == two pipeline blocks of 20 jobs (DESIGN.md §6).
  const auto gen = make_gen(40);

  wl::PipelineOptions popts;
  popts.include_huge = false;
  popts.block_jobs = 20;
  popts.threads = 2;
  const wl::PipelineResult reference = run_pipeline(gen, popts);

  Archive ar = Archive::create(dir_);
  IngestOptions iopts;
  iopts.batches = 2;
  iopts.include_huge = false;
  const IngestStats ing = ingest_generated(ar, gen, iopts);
  EXPECT_EQ(ing.partitions, 2u);
  EXPECT_EQ(ing.logs, reference.stats.logs);

  const QueryResult first = query_archive(ar);
  EXPECT_EQ(first.stats.partitions, 2u);
  EXPECT_EQ(first.stats.snapshot_hits, 0u);
  EXPECT_EQ(first.stats.partitions_scanned, 2u);
  EXPECT_EQ(first.stats.logs_scanned, ing.logs);
  EXPECT_EQ(first.stats.snapshots_written, 2u);

  EXPECT_EQ(first.analysis.fingerprint(), reference.bulk.fingerprint());
  EXPECT_EQ(state(first.analysis), state(reference.bulk));
  // combined() with an empty huge stratum is the bulk analysis, bit for bit.
  EXPECT_EQ(state(first.analysis), state(reference.combined()));

  // Second query: every shard comes from the snapshot cache — zero
  // partitions rescanned, zero logs decoded, identical bytes.
  const QueryResult second = query_archive(ar);
  EXPECT_EQ(second.stats.snapshot_hits, 2u);
  EXPECT_EQ(second.stats.partitions_scanned, 0u);
  EXPECT_EQ(second.stats.logs_scanned, 0u);
  EXPECT_EQ(second.stats.snapshots_written, 0u);
  EXPECT_EQ(state(second.analysis), state(first.analysis));
}

TEST_F(ArchiveTest, IncrementalIngestOnlyScansNewPartitions) {
  const auto gen = make_gen(30, 17);
  Archive ar = Archive::create(dir_);
  IngestOptions iopts;
  iopts.include_huge = false;

  // Batch 1: jobs [0, 15) — ingest_generated on a 15-job prefix view is not
  // expressible, so use two explicit batches through one generator instead.
  iopts.batches = 1;
  ingest_generated(ar, gen, iopts);
  const QueryResult q1 = query_archive(ar);
  EXPECT_EQ(q1.stats.partitions_scanned, 1u);

  // Appending the huge stratum adds one partition; the bulk partition's
  // snapshot stays valid, so the next query rescans exactly the new one.
  Archive::PartitionWriter w = ar.begin_partition();
  wl::serialize_logs(gen, wl::Stratum::kHuge, 0, gen.huge_job_count(), {},
                     [&](const darshan::JobRecord& job, std::span<const std::byte> frame) {
                       w.append_frame(job, frame);
                     });
  w.seal();

  const QueryResult q2 = query_archive(ar);
  EXPECT_EQ(q2.stats.partitions, 2u);
  EXPECT_EQ(q2.stats.snapshot_hits, 1u);
  EXPECT_EQ(q2.stats.partitions_scanned, 1u);
  EXPECT_GT(q2.analysis.summary().logs(), q1.analysis.summary().logs());

  // And the cache converges: a third query is all hits, bit-identical.
  const QueryResult q3 = query_archive(ar);
  EXPECT_EQ(q3.stats.snapshot_hits, 2u);
  EXPECT_EQ(q3.stats.partitions_scanned, 0u);
  EXPECT_EQ(state(q3.analysis), state(q2.analysis));
}

TEST_F(ArchiveTest, IngestTimeSnapshotsMakeTheFirstQueryWarm) {
  const auto gen = make_gen(20, 3);
  Archive ar = Archive::create(dir_);
  IngestOptions iopts;
  iopts.batches = 2;
  iopts.include_huge = true;
  iopts.write_snapshots = true;
  ingest_generated(ar, gen, iopts);

  const QueryResult warm = query_archive(ar);
  EXPECT_EQ(warm.stats.partitions, 3u);  // 2 bulk batches + huge
  EXPECT_EQ(warm.stats.snapshot_hits, 3u);
  EXPECT_EQ(warm.stats.partitions_scanned, 0u);

  // The cached shards are bit-identical to what a rescan computes: a cold
  // archive with the same cuts and no ingest-time snapshots agrees exactly.
  const fs::path cold_dir = dir_.string() + "_cold";
  fs::remove_all(cold_dir);
  Archive cold = Archive::create(cold_dir);
  IngestOptions no_snap = iopts;
  no_snap.write_snapshots = false;
  ingest_generated(cold, gen, no_snap);
  const QueryResult rescan = query_archive(cold);
  EXPECT_EQ(rescan.stats.partitions_scanned, 3u);
  EXPECT_EQ(state(warm.analysis), state(rescan.analysis));
  fs::remove_all(cold_dir);
}

TEST_F(ArchiveTest, QueryIsThreadCountInvariant) {
  const auto gen = make_gen(24, 29);
  Archive ar = Archive::create(dir_);
  IngestOptions iopts;
  iopts.batches = 4;
  ingest_generated(ar, gen, iopts);

  QueryOptions one;
  one.threads = 1;
  one.write_snapshots = false;
  QueryOptions four;
  four.threads = 4;
  four.write_snapshots = false;
  const QueryResult a = query_archive(ar, one);
  const QueryResult b = query_archive(ar, four);
  EXPECT_EQ(a.stats.partitions_scanned, b.stats.partitions_scanned);
  EXPECT_EQ(state(a.analysis), state(b.analysis));
}

TEST_F(ArchiveTest, CompactMergesSmallPartitionsAndPreservesCounts) {
  const auto gen = make_gen(30, 41);
  Archive ar = Archive::create(dir_);
  IngestOptions iopts;
  iopts.batches = 5;
  iopts.include_huge = false;
  ingest_generated(ar, gen, iopts);
  const QueryResult before = query_archive(ar);
  ASSERT_EQ(before.stats.partitions, 5u);

  const std::size_t removed = ar.compact(1'000'000);
  EXPECT_EQ(removed, 4u);
  EXPECT_EQ(ar.manifest().partitions.size(), 1u);
  EXPECT_TRUE(ar.verify(true).ok());

  // Compaction changes the merge tree (one sequential shard instead of a
  // five-shard fold), so double-precision sums may differ in the last bit —
  // but every integer census is grouping-invariant and must be preserved.
  const QueryResult after = query_archive(ar);
  EXPECT_EQ(after.stats.partitions_scanned, 1u);  // snapshots drop on compact
  EXPECT_EQ(after.analysis.summary().logs(), before.analysis.summary().logs());
  EXPECT_EQ(after.analysis.summary().jobs(), before.analysis.summary().jobs());
  EXPECT_EQ(after.analysis.summary().files(), before.analysis.summary().files());
  for (std::size_t li = 0; li < core::kLayerCount; ++li) {
    const auto layer = static_cast<core::Layer>(li);
    EXPECT_EQ(after.analysis.access().layer(layer).files,
              before.analysis.access().layer(layer).files);
    EXPECT_EQ(after.analysis.interfaces().counts(layer).posix,
              before.analysis.interfaces().counts(layer).posix);
  }
  EXPECT_NEAR(after.analysis.summary().node_hours(), before.analysis.summary().node_hours(),
              1e-6 * (1.0 + before.analysis.summary().node_hours()));

  // Log order survives compaction exactly: a fresh single-batch archive of
  // the same population queries to the same bytes as the compacted one.
  const fs::path ref_dir = dir_.string() + "_ref";
  fs::remove_all(ref_dir);
  Archive ref = Archive::create(ref_dir);
  IngestOptions one_batch = iopts;
  one_batch.batches = 1;
  ingest_generated(ref, gen, one_batch);
  EXPECT_EQ(state(query_archive(ref).analysis), state(after.analysis));
  fs::remove_all(ref_dir);
}

TEST_F(ArchiveTest, IngestLogFilesFormsOnePartition) {
  const auto gen = make_gen(10, 53);
  // Dump a few logs as standalone files, shuffled names to prove the given
  // file order is what defines ingest order.
  const fs::path drop = dir_.string() + "_drop";
  fs::remove_all(drop);
  fs::create_directories(drop);
  std::vector<fs::path> files;
  wl::serialize_logs(gen, wl::Stratum::kBulk, 0, 10, {},
                     [&](const darshan::JobRecord&, std::span<const std::byte> frame) {
                       const fs::path p = drop / ("log" + std::to_string(files.size()) + ".darshan");
                       util::write_file_atomic(p, frame);
                       files.push_back(p);
                     });
  ASSERT_GT(files.size(), 2u);

  Archive ar = Archive::create(dir_);
  const IngestStats stats = ingest_log_files(ar, files);
  EXPECT_EQ(stats.partitions, 1u);
  EXPECT_EQ(stats.logs, files.size());

  const QueryResult q = query_archive(ar);
  EXPECT_EQ(q.analysis.summary().logs(), files.size());
  EXPECT_TRUE(ar.verify(true).ok());
  fs::remove_all(drop);
}

TEST_F(ArchiveTest, OpenAndCreateGuardRails) {
  EXPECT_THROW(Archive::open(dir_ / "nope"), util::Error);
  Archive::create(dir_);
  EXPECT_THROW(Archive::create(dir_), util::ConfigError);
  Archive reopened = Archive::open(dir_);
  EXPECT_EQ(reopened.manifest().partitions.size(), 0u);
  const QueryResult q = query_archive(reopened);
  EXPECT_EQ(q.stats.partitions, 0u);
  EXPECT_EQ(q.analysis.summary().logs(), 0u);
}

}  // namespace
}  // namespace mlio::archive
