#include <gtest/gtest.h>

#include "darshan/counters.hpp"
#include "darshan/module.hpp"
#include "darshan/record.hpp"

namespace mlio::darshan {
namespace {

TEST(Module, CounterCounts) {
  EXPECT_EQ(counter_count(ModuleId::kPosix), posix::COUNTER_COUNT);
  EXPECT_EQ(counter_count(ModuleId::kMpiIo), mpiio::COUNTER_COUNT);
  EXPECT_EQ(counter_count(ModuleId::kStdio), stdio::COUNTER_COUNT);
  EXPECT_EQ(counter_count(ModuleId::kLustre), lustre::COUNTER_COUNT);
  // STDIO deliberately lacks the request-size histograms (Rec. 4).
  EXPECT_LT(counter_count(ModuleId::kStdio), counter_count(ModuleId::kPosix));
  EXPECT_EQ(fcounter_count(ModuleId::kLustre), 0u);
}

TEST(Module, NamesAreStable) {
  EXPECT_EQ(module_name(ModuleId::kPosix), "POSIX");
  EXPECT_EQ(module_name(ModuleId::kStdio), "STDIO");
  EXPECT_EQ(counter_name(ModuleId::kPosix, posix::BYTES_READ), "POSIX_BYTES_READ");
  EXPECT_EQ(counter_name(ModuleId::kPosix, posix::SIZE_READ_0_100), "POSIX_SIZE_READ_0_100");
  EXPECT_EQ(counter_name(ModuleId::kPosix, posix::SIZE_WRITE_1G_PLUS),
            "POSIX_SIZE_WRITE_1G_PLUS");
  EXPECT_EQ(counter_name(ModuleId::kStdio, stdio::BYTES_WRITTEN), "STDIO_BYTES_WRITTEN");
  EXPECT_EQ(fcounter_name(ModuleId::kMpiIo, mpiio::F_READ_TIME), "MPIIO_F_READ_TIME");
  EXPECT_EQ(counter_name(ModuleId::kLustre, lustre::STRIPE_WIDTH), "LUSTRE_STRIPE_WIDTH");
}

TEST(Module, HistogramBinsAreContiguous) {
  // The runtime indexes bins as SIZE_READ_0_100 + bin; verify the layout.
  EXPECT_EQ(posix::SIZE_READ_1G_PLUS - posix::SIZE_READ_0_100, 9u);
  EXPECT_EQ(posix::SIZE_WRITE_0_100 - posix::SIZE_READ_0_100, 10u);
  EXPECT_EQ(mpiio::SIZE_WRITE_AGG_0_100 - mpiio::SIZE_READ_AGG_0_100, 10u);
}

TEST(Record, HashIsFnv1a) {
  // FNV-1a 64 reference values.
  EXPECT_EQ(hash_record_id(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(hash_record_id("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_NE(hash_record_id("/gpfs/alpine/x"), hash_record_id("/gpfs/alpine/y"));
}

TEST(Record, ConstructorSizesCounterVectors) {
  const FileRecord r(7, kSharedRank, ModuleId::kStdio);
  EXPECT_EQ(r.counters.size(), stdio::COUNTER_COUNT);
  EXPECT_EQ(r.fcounters.size(), stdio::FCOUNTER_COUNT);
  EXPECT_EQ(r.rank, -1);
}

TEST(Record, LogDataPathLookup) {
  LogData log;
  log.names.add(42, "/mnt/bb/file");
  EXPECT_EQ(log.path_of(42), "/mnt/bb/file");
  EXPECT_TRUE(log.path_of(43).empty());
}

TEST(Record, BatchedPathsMatchScalarLookups) {
  // paths_of is the lockstep-prefetch twin of path_of; for every table size
  // (empty through beyond the inline query buffer) and a query mix of hits,
  // misses, duplicates, and first-wins duplicate ids, the two must agree.
  for (const std::size_t n : {0u, 1u, 2u, 7u, 63u, 64u, 65u, 200u}) {
    NameTable t;
    for (std::size_t i = 0; i < n; ++i) {
      t.add(i * 3 + 1, "/gpfs/alpine/f" + std::to_string(i));
    }
    if (n > 1) t.add(4, "/gpfs/alpine/DUPLICATE");  // id 4 already present
    std::vector<std::uint64_t> ids;
    for (std::size_t i = 0; i < 2 * n + 3; ++i) ids.push_back(i);
    ids.push_back(4);
    ids.push_back(0xffffffffffffffffull);
    std::vector<std::string_view> got(ids.size());
    t.paths_of(ids, got);
    for (std::size_t i = 0; i < ids.size(); ++i) {
      EXPECT_EQ(got[i], t.path_of(ids[i])) << "n=" << n << " id=" << ids[i];
    }
  }
}

TEST(Record, EqualityCoversAllFields) {
  LogData a;
  a.job.job_id = 1;
  a.mounts.push_back({"/gpfs", "gpfs"});
  a.names.add(1, "/gpfs/x");
  a.records.emplace_back(1, 0, ModuleId::kPosix);
  LogData b = a;
  EXPECT_TRUE(a == b);
  b.records[0].counters[posix::OPENS] = 1;
  EXPECT_FALSE(a == b);
}

}  // namespace
}  // namespace mlio::darshan
