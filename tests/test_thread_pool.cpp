#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace mlio::util {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) pool.submit([&] { counter.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  const std::uint64_t n = 10007;
  std::vector<std::atomic<int>> hits(n);
  pool.parallel_for_chunks(0, n, 16, [&](std::uint64_t, std::uint64_t lo, std::uint64_t hi) {
    for (std::uint64_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (std::uint64_t i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, ChunkIndicesAreDense) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> chunk_seen(8);
  pool.parallel_for_chunks(100, 200, 8, [&](std::uint64_t c, std::uint64_t, std::uint64_t) {
    chunk_seen[c].fetch_add(1);
  });
  for (auto& c : chunk_seen) EXPECT_EQ(c.load(), 1);
}

TEST(ThreadPool, ChunkingIsDeterministic) {
  // Chunk boundaries depend only on (range, chunks), never on thread count.
  auto boundaries = [](unsigned threads) {
    ThreadPool pool(threads);
    std::vector<std::pair<std::uint64_t, std::uint64_t>> out(5);
    pool.parallel_for_chunks(0, 103, 5, [&](std::uint64_t c, std::uint64_t lo, std::uint64_t hi) {
      out[c] = {lo, hi};
    });
    return out;
  };
  EXPECT_EQ(boundaries(1), boundaries(4));
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for_chunks(5, 5, 4, [&](std::uint64_t, std::uint64_t, std::uint64_t) {
    called = true;
  });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, MoreChunksThanElementsClamps) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  pool.parallel_for_chunks(0, 3, 100, [&](std::uint64_t, std::uint64_t lo, std::uint64_t hi) {
    total.fetch_add(static_cast<int>(hi - lo));
  });
  EXPECT_EQ(total.load(), 3);
}

TEST(ThreadPool, DynamicCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  const std::uint64_t n = 10007;
  std::vector<std::atomic<int>> hits(n);
  pool.parallel_for_dynamic(0, n, 64, [&](std::uint64_t, std::uint64_t lo, std::uint64_t hi,
                                          unsigned) {
    for (std::uint64_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (std::uint64_t i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, DynamicBlockBoundariesIgnoreThreadCount) {
  // Block boundaries are a pure function of (range, block size) — the
  // determinism contract: accumulate per block, merge in block order.
  auto boundaries = [](unsigned threads) {
    ThreadPool pool(threads);
    std::vector<std::pair<std::uint64_t, std::uint64_t>> out((103 + 9) / 10);
    pool.parallel_for_dynamic(0, 103, 10, [&](std::uint64_t b, std::uint64_t lo,
                                              std::uint64_t hi, unsigned) {
      out[b] = {lo, hi};
    });
    return out;
  };
  EXPECT_EQ(boundaries(1), boundaries(4));
}

TEST(ThreadPool, DynamicWorkerCountsSumToBlocks) {
  ThreadPool pool(3);
  std::atomic<int> total{0};
  const auto counts = pool.parallel_for_dynamic(
      0, 1000, 7, [&](std::uint64_t, std::uint64_t lo, std::uint64_t hi, unsigned w) {
        ASSERT_LT(w, 3u);
        total.fetch_add(static_cast<int>(hi - lo));
      });
  EXPECT_EQ(total.load(), 1000);
  std::uint64_t blocks = 0;
  for (const auto c : counts) blocks += c;
  EXPECT_EQ(blocks, (1000 + 6) / 7);
}

TEST(ThreadPool, DynamicEmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for_dynamic(9, 9, 4, [&](std::uint64_t, std::uint64_t, std::uint64_t, unsigned) {
    called = true;
  });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, NestedParallelForChunksRunsInline) {
  // Regression: a parallel_for issued from inside a worker task used to wait
  // on workers that were all waiting on it.  A single-thread pool makes the
  // deadlock deterministic — the nested call must run inline instead.
  ThreadPool pool(1);
  std::atomic<std::uint64_t> sum{0};
  std::atomic<bool> saw_worker_flag{false};
  pool.submit([&] {
    saw_worker_flag = ThreadPool::in_worker();
    pool.parallel_for_chunks(0, 100, 8, [&](std::uint64_t, std::uint64_t lo, std::uint64_t hi) {
      for (std::uint64_t i = lo; i < hi; ++i) sum.fetch_add(i);
    });
  });
  pool.wait_idle();
  EXPECT_TRUE(saw_worker_flag.load());
  EXPECT_EQ(sum.load(), 4950u);
}

TEST(ThreadPool, NestedParallelForDynamicRunsInline) {
  ThreadPool pool(1);
  std::atomic<std::uint64_t> covered{0};
  pool.submit([&] {
    pool.parallel_for_dynamic(0, 50, 8, [&](std::uint64_t, std::uint64_t lo, std::uint64_t hi,
                                            unsigned w) {
      EXPECT_EQ(w, 0u);
      covered.fetch_add(hi - lo);
    });
  });
  pool.wait_idle();
  EXPECT_EQ(covered.load(), 50u);
}

TEST(ThreadPool, InWorkerFalseOnCaller) { EXPECT_FALSE(ThreadPool::in_worker()); }

TEST(ThreadPool, SingleThreadPoolStillWorks) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.thread_count(), 1u);
  std::uint64_t sum = 0;
  pool.parallel_for_chunks(1, 101, 0, [&](std::uint64_t, std::uint64_t lo, std::uint64_t hi) {
    for (std::uint64_t i = lo; i < hi; ++i) sum += i;
  });
  EXPECT_EQ(sum, 5050u);
}

}  // namespace
}  // namespace mlio::util
