#include "workload/pipeline.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/units.hpp"

namespace mlio::wl {
namespace {

GeneratorConfig cfg(std::uint64_t n_jobs, std::uint64_t seed = 3) {
  GeneratorConfig c;
  c.n_jobs = n_jobs;
  c.seed = seed;
  c.logs_per_job_scale = 0.2;
  c.files_per_log_scale = 0.2;
  return c;
}

TEST(Pipeline, EndToEndOnBothSystems) {
  for (const SystemProfile* prof :
       {&SystemProfile::summit_2020(), &SystemProfile::cori_2019()}) {
    const WorkloadGenerator gen(*prof, cfg(60));
    PipelineOptions opts;
    opts.include_huge = false;
    const PipelineResult r = run_pipeline(gen, opts);
    EXPECT_GT(r.bulk.summary().logs(), 0u) << prof->system;
    EXPECT_GT(r.bulk.summary().files(), 100u) << prof->system;
    EXPECT_EQ(r.bulk.unattributed_files(), 0u) << prof->system;
    EXPECT_GT(r.bulk.access().layer(core::Layer::kPfs).bytes_read, 0.0) << prof->system;
  }
}

TEST(Pipeline, DeterministicAcrossThreadCounts) {
  const WorkloadGenerator gen(SystemProfile::summit_2020(), cfg(40));
  PipelineOptions one;
  one.threads = 1;
  one.include_huge = false;
  PipelineOptions four;
  four.threads = 4;
  four.include_huge = false;
  const PipelineResult a = run_pipeline(gen, one);
  const PipelineResult b = run_pipeline(gen, four);
  EXPECT_EQ(a.bulk.summary().logs(), b.bulk.summary().logs());
  EXPECT_EQ(a.bulk.summary().files(), b.bulk.summary().files());
  EXPECT_DOUBLE_EQ(a.bulk.access().layer(core::Layer::kPfs).bytes_read,
                   b.bulk.access().layer(core::Layer::kPfs).bytes_read);
  EXPECT_DOUBLE_EQ(a.bulk.access().layer(core::Layer::kInSystem).bytes_written,
                   b.bulk.access().layer(core::Layer::kInSystem).bytes_written);
  EXPECT_EQ(a.bulk.layers().job_exclusivity().pfs_only,
            b.bulk.layers().job_exclusivity().pfs_only);
}

TEST(Pipeline, LogRoundtripDoesNotChangeResults) {
  // Serializing every log through the on-disk format and parsing it back must
  // be analysis-invariant: the format loses nothing the analyses consume.
  const WorkloadGenerator gen(SystemProfile::cori_2019(), cfg(25));
  PipelineOptions direct;
  direct.include_huge = false;
  PipelineOptions via_disk = direct;
  via_disk.roundtrip_logs = true;
  const PipelineResult a = run_pipeline(gen, direct);
  const PipelineResult b = run_pipeline(gen, via_disk);
  EXPECT_EQ(a.bulk.summary().files(), b.bulk.summary().files());
  EXPECT_DOUBLE_EQ(a.bulk.access().layer(core::Layer::kPfs).bytes_written,
                   b.bulk.access().layer(core::Layer::kPfs).bytes_written);
  EXPECT_EQ(a.bulk.interfaces().counts(core::Layer::kPfs).stdio,
            b.bulk.interfaces().counts(core::Layer::kPfs).stdio);
  EXPECT_EQ(a.bulk.performance().observations(), b.bulk.performance().observations());
}

TEST(Pipeline, BitIdenticalAcrossThreadsAndSchedulers) {
  // The determinism contract: one Analysis per fixed-size block, merged in
  // block order, with block boundaries a pure function of the population.
  // On a skewed population (full huge stratum included), every analysis bit
  // — summary counts, CDF bins, performance moments — must be identical
  // across thread counts and scheduler modes.
  const WorkloadGenerator gen(SystemProfile::cori_2019(), cfg(30));

  auto run = [&](unsigned threads, PipelineOptions::Scheduling mode) {
    PipelineOptions opts;
    opts.threads = threads;
    opts.scheduling = mode;
    opts.include_huge = true;
    return run_pipeline(gen, opts);
  };

  const PipelineResult base = run(1, PipelineOptions::Scheduling::kStatic);
  const std::uint64_t bulk_fp = base.bulk.fingerprint();
  const std::uint64_t huge_fp = base.huge.fingerprint();
  for (const unsigned threads : {1u, 8u}) {
    for (const auto mode :
         {PipelineOptions::Scheduling::kStatic, PipelineOptions::Scheduling::kDynamic}) {
      const PipelineResult r = run(threads, mode);
      EXPECT_EQ(r.bulk.fingerprint(), bulk_fp)
          << "threads=" << threads << " dynamic=" << (mode == PipelineOptions::Scheduling::kDynamic);
      EXPECT_EQ(r.huge.fingerprint(), huge_fp)
          << "threads=" << threads << " dynamic=" << (mode == PipelineOptions::Scheduling::kDynamic);
      // Spot-check a few raw values so a fingerprint bug can't mask a drift.
      EXPECT_EQ(r.bulk.summary().files(), base.bulk.summary().files());
      EXPECT_EQ(r.combined().performance().observations(),
                base.combined().performance().observations());
      const auto fn = r.huge.performance().cell(core::Layer::kPfs, 0, 5, false);
      const auto fn_base = base.huge.performance().cell(core::Layer::kPfs, 0, 5, false);
      EXPECT_EQ(fn.count, fn_base.count);
      EXPECT_EQ(fn.median, fn_base.median);  // exact: same merge order required
    }
  }
}

TEST(Pipeline, RoundtripHonorsWriteOptions) {
  // The roundtrip must be analysis-invariant for any WriteOptions — and the
  // options must actually be plumbed through (uncompressed logs parse too).
  const WorkloadGenerator gen(SystemProfile::summit_2020(), cfg(15));
  PipelineOptions direct;
  direct.include_huge = false;
  const std::uint64_t fp = run_pipeline(gen, direct).bulk.fingerprint();

  PipelineOptions uncompressed = direct;
  uncompressed.roundtrip_logs = true;
  uncompressed.write_options.compress = false;
  EXPECT_EQ(run_pipeline(gen, uncompressed).bulk.fingerprint(), fp);

  PipelineOptions fast_zlib = direct;
  fast_zlib.roundtrip_logs = true;
  fast_zlib.write_options.zlib_level = 1;
  EXPECT_EQ(run_pipeline(gen, fast_zlib).bulk.fingerprint(), fp);
}

TEST(Pipeline, StatsReportThroughput) {
  const WorkloadGenerator gen(SystemProfile::cori_2019(), cfg(20));
  PipelineOptions opts;
  opts.threads = 2;
  const PipelineResult r = run_pipeline(gen, opts);
  const PipelineStats& s = r.stats;
  EXPECT_EQ(s.threads, 2u);
  EXPECT_TRUE(s.dynamic_scheduling);
  EXPECT_EQ(s.jobs, 20u + gen.huge_job_count());
  EXPECT_EQ(s.logs, r.bulk.summary().logs() + r.huge.summary().logs());
  EXPECT_GT(s.simulated_bytes, 0.0);
  EXPECT_GT(s.total_seconds, 0.0);
  EXPECT_GT(s.jobs_per_second(), 0.0);
  EXPECT_GT(s.logs_per_second(), 0.0);
  // Every block was executed by exactly one worker slot.
  std::uint64_t blocks = 0;
  for (const auto c : s.worker_blocks) blocks += c;
  EXPECT_EQ(blocks, s.bulk_blocks + s.huge_blocks);
}

TEST(Pipeline, ExplicitBlockSizeIsHonored) {
  const WorkloadGenerator gen(SystemProfile::summit_2020(), cfg(10));
  PipelineOptions opts;
  opts.include_huge = false;
  opts.block_jobs = 3;
  const PipelineResult r = run_pipeline(gen, opts);
  EXPECT_EQ(r.stats.block_jobs, 3u);
  EXPECT_EQ(r.stats.bulk_blocks, 4u);  // ceil(10 / 3)
}

TEST(Pipeline, HugeStratumLandsInTable4Census) {
  const WorkloadGenerator gen(SystemProfile::cori_2019(), cfg(5));
  const PipelineResult r = run_pipeline(gen);
  const auto& cbb = r.huge.access().layer(core::Layer::kInSystem);
  const auto& pfs = r.huge.access().layer(core::Layer::kPfs);
  EXPECT_EQ(cbb.huge_read_files, 513u);
  EXPECT_EQ(cbb.huge_write_files, 950u);
  EXPECT_EQ(pfs.huge_read_files, 74u);
  EXPECT_EQ(pfs.huge_write_files, 10045u);
  // Bulk stays below 1 TB by construction.
  EXPECT_EQ(r.bulk.access().layer(core::Layer::kPfs).huge_read_files, 0u);
}

TEST(Pipeline, MachineForRejectsUnknownSystems) {
  SystemProfile p = SystemProfile::summit_2020();
  p.system = "Trinity";
  EXPECT_THROW(machine_for(p), util::ConfigError);
}

TEST(Pipeline, CombinedMergesStrata) {
  const WorkloadGenerator gen(SystemProfile::summit_2020(), cfg(10));
  const PipelineResult r = run_pipeline(gen);
  const core::Analysis all = r.combined();
  EXPECT_EQ(all.summary().logs(), r.bulk.summary().logs() + r.huge.summary().logs());
}

}  // namespace
}  // namespace mlio::wl
