#include "workload/pipeline.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/units.hpp"

namespace mlio::wl {
namespace {

GeneratorConfig cfg(std::uint64_t n_jobs, std::uint64_t seed = 3) {
  GeneratorConfig c;
  c.n_jobs = n_jobs;
  c.seed = seed;
  c.logs_per_job_scale = 0.2;
  c.files_per_log_scale = 0.2;
  return c;
}

TEST(Pipeline, EndToEndOnBothSystems) {
  for (const SystemProfile* prof :
       {&SystemProfile::summit_2020(), &SystemProfile::cori_2019()}) {
    const WorkloadGenerator gen(*prof, cfg(60));
    PipelineOptions opts;
    opts.include_huge = false;
    const PipelineResult r = run_pipeline(gen, opts);
    EXPECT_GT(r.bulk.summary().logs(), 0u) << prof->system;
    EXPECT_GT(r.bulk.summary().files(), 100u) << prof->system;
    EXPECT_EQ(r.bulk.unattributed_files(), 0u) << prof->system;
    EXPECT_GT(r.bulk.access().layer(core::Layer::kPfs).bytes_read, 0.0) << prof->system;
  }
}

TEST(Pipeline, DeterministicAcrossThreadCounts) {
  const WorkloadGenerator gen(SystemProfile::summit_2020(), cfg(40));
  PipelineOptions one;
  one.threads = 1;
  one.include_huge = false;
  PipelineOptions four;
  four.threads = 4;
  four.include_huge = false;
  const PipelineResult a = run_pipeline(gen, one);
  const PipelineResult b = run_pipeline(gen, four);
  EXPECT_EQ(a.bulk.summary().logs(), b.bulk.summary().logs());
  EXPECT_EQ(a.bulk.summary().files(), b.bulk.summary().files());
  EXPECT_DOUBLE_EQ(a.bulk.access().layer(core::Layer::kPfs).bytes_read,
                   b.bulk.access().layer(core::Layer::kPfs).bytes_read);
  EXPECT_DOUBLE_EQ(a.bulk.access().layer(core::Layer::kInSystem).bytes_written,
                   b.bulk.access().layer(core::Layer::kInSystem).bytes_written);
  EXPECT_EQ(a.bulk.layers().job_exclusivity().pfs_only,
            b.bulk.layers().job_exclusivity().pfs_only);
}

TEST(Pipeline, LogRoundtripDoesNotChangeResults) {
  // Serializing every log through the on-disk format and parsing it back must
  // be analysis-invariant: the format loses nothing the analyses consume.
  const WorkloadGenerator gen(SystemProfile::cori_2019(), cfg(25));
  PipelineOptions direct;
  direct.include_huge = false;
  PipelineOptions via_disk = direct;
  via_disk.roundtrip_logs = true;
  const PipelineResult a = run_pipeline(gen, direct);
  const PipelineResult b = run_pipeline(gen, via_disk);
  EXPECT_EQ(a.bulk.summary().files(), b.bulk.summary().files());
  EXPECT_DOUBLE_EQ(a.bulk.access().layer(core::Layer::kPfs).bytes_written,
                   b.bulk.access().layer(core::Layer::kPfs).bytes_written);
  EXPECT_EQ(a.bulk.interfaces().counts(core::Layer::kPfs).stdio,
            b.bulk.interfaces().counts(core::Layer::kPfs).stdio);
  EXPECT_EQ(a.bulk.performance().observations(), b.bulk.performance().observations());
}

TEST(Pipeline, HugeStratumLandsInTable4Census) {
  const WorkloadGenerator gen(SystemProfile::cori_2019(), cfg(5));
  const PipelineResult r = run_pipeline(gen);
  const auto& cbb = r.huge.access().layer(core::Layer::kInSystem);
  const auto& pfs = r.huge.access().layer(core::Layer::kPfs);
  EXPECT_EQ(cbb.huge_read_files, 513u);
  EXPECT_EQ(cbb.huge_write_files, 950u);
  EXPECT_EQ(pfs.huge_read_files, 74u);
  EXPECT_EQ(pfs.huge_write_files, 10045u);
  // Bulk stays below 1 TB by construction.
  EXPECT_EQ(r.bulk.access().layer(core::Layer::kPfs).huge_read_files, 0u);
}

TEST(Pipeline, MachineForRejectsUnknownSystems) {
  SystemProfile p = SystemProfile::summit_2020();
  p.system = "Trinity";
  EXPECT_THROW(machine_for(p), util::ConfigError);
}

TEST(Pipeline, CombinedMergesStrata) {
  const WorkloadGenerator gen(SystemProfile::summit_2020(), cfg(10));
  const PipelineResult r = run_pipeline(gen);
  const core::Analysis all = r.combined();
  EXPECT_EQ(all.summary().logs(), r.bulk.summary().logs() + r.huge.summary().logs());
}

}  // namespace
}  // namespace mlio::wl
