// quickstart_logs — produce real Darshan log *files* on disk, then analyze
// them by reading the files back (the full write->read->analyze loop a
// facility would run against its own archive).
//
//   ./quickstart_logs [out_dir] [n_jobs] [seed]
#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "core/analysis.hpp"
#include "darshan/log_format.hpp"
#include "iosim/executor.hpp"
#include "util/units.hpp"
#include "workload/generator.hpp"
#include "workload/pipeline.hpp"

int main(int argc, char** argv) {
  using namespace mlio;
  namespace fs = std::filesystem;

  const fs::path out_dir = argc > 1 ? argv[1] : "darshan_logs";
  wl::GeneratorConfig cfg;
  cfg.n_jobs = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 25;
  cfg.seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 42;
  cfg.logs_per_job_scale = 0.2;
  cfg.files_per_log_scale = 0.2;

  const wl::SystemProfile& prof = wl::SystemProfile::cori_2019();
  const wl::WorkloadGenerator gen(prof, cfg);
  const sim::JobExecutor executor(wl::machine_for(prof));

  fs::create_directories(out_dir);
  std::size_t written = 0;
  std::uintmax_t bytes = 0;
  gen.generate_bulk([&](const sim::JobSpec& spec) {
    const darshan::LogData log = executor.execute(spec);
    char name[128];
    std::snprintf(name, sizeof name, "user%u_job%llu_%zu.darshan", log.job.user_id,
                  static_cast<unsigned long long>(log.job.job_id), written);
    const fs::path path = out_dir / name;
    darshan::write_log_file(log, path);
    bytes += fs::file_size(path);
    ++written;
  });
  std::printf("wrote %zu compressed logs (%s) to %s\n", written,
              util::format_bytes(static_cast<double>(bytes)).c_str(), out_dir.c_str());

  // Read every file back and run the full analysis on the parsed logs.
  core::Analysis analysis;
  for (const auto& entry : fs::directory_iterator(out_dir)) {
    if (entry.path().extension() != ".darshan") continue;
    analysis.add(darshan::read_log_file(entry.path()));
  }
  std::printf("re-parsed %llu logs: %llu jobs, %llu files, %s read, %s written\n",
              static_cast<unsigned long long>(analysis.summary().logs()),
              static_cast<unsigned long long>(analysis.summary().jobs()),
              static_cast<unsigned long long>(analysis.summary().files()),
              util::format_bytes(analysis.access().layer(core::Layer::kPfs).bytes_read +
                                 analysis.access().layer(core::Layer::kInSystem).bytes_read)
                  .c_str(),
              util::format_bytes(analysis.access().layer(core::Layer::kPfs).bytes_written +
                                 analysis.access().layer(core::Layer::kInSystem).bytes_written)
                  .c_str());
  std::printf("inspect one with: ./darshan_dump %s/<file>.darshan --records\n",
              out_dir.c_str());
  return 0;
}
