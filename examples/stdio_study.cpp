// stdio_study — the §3.3 deep dive as a standalone tool (Recs. 4/5/6).
//
// Generates a population for one system and reports everything the paper
// derives about STDIO: per-layer usage, RO/RW/WO composition, science-domain
// spread, extension census, job coverage, and the POSIX-vs-STDIO delivered
// bandwidth gap — then quantifies what Rec. 6's proposed fix (aggregating
// STDIO through a buffered middleware layer) would recover, by re-timing the
// STDIO traffic with POSIX-like parallel semantics.
//
//   ./stdio_study [summit|cori] [n_jobs] [seed]
#include <algorithm>
#include <cstdio>
#include <cstring>

#include "core/analysis.hpp"
#include "iosim/executor.hpp"
#include "util/table.hpp"
#include "util/units.hpp"
#include "workload/pipeline.hpp"

namespace {

using namespace mlio;

void report_usage(const core::Analysis& all) {
  util::Table t({"layer", "POSIX files", "MPI-IO files", "STDIO files", "STDIO share"});
  for (const core::Layer layer : {core::Layer::kInSystem, core::Layer::kPfs}) {
    const auto& c = all.interfaces().counts(layer);
    const double total = double(c.posix + c.stdio);  // posix includes mpiio
    t.add_row({std::string(core::layer_name(layer)), util::format_count(double(c.posix)),
               util::format_count(double(c.mpiio)), util::format_count(double(c.stdio)),
               util::format_fixed(100.0 * double(c.stdio) / std::max(1.0, total), 1) + "%"});
  }
  std::printf("Interface usage per layer (cf. Table 6):\n%s\n", t.to_string().c_str());

  util::Table cls({"layer", "read-only", "read-write", "write-only"});
  for (const core::Layer layer : {core::Layer::kInSystem, core::Layer::kPfs}) {
    const auto& s = all.interfaces().stdio_classes(layer);
    cls.add_row({std::string(core::layer_name(layer)), std::to_string(s.read_only),
                 std::to_string(s.read_write), std::to_string(s.write_only)});
  }
  std::printf("STDIO file classification (cf. Fig. 8):\n%s\n", cls.to_string().c_str());
}

void report_domains(const core::Analysis& all) {
  const auto& domains = all.interfaces().stdio_domains();
  std::vector<std::pair<std::string, core::InterfaceUsage::DomainStdio>> sorted(domains.begin(),
                                                                                domains.end());
  std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
    return a.second.bytes_read + a.second.bytes_written >
           b.second.bytes_read + b.second.bytes_written;
  });
  util::Table t({"domain", "STDIO read", "STDIO write"});
  for (const auto& [name, d] : sorted) {
    t.add_row({name, util::format_bytes(d.bytes_read), util::format_bytes(d.bytes_written)});
  }
  std::printf("STDIO transfer by science domain (cf. Fig. 10): %zu domains\n%s\n",
              sorted.size(), t.to_string().c_str());

  const auto& exts = all.interfaces().stdio_extensions();
  std::vector<std::pair<std::string, std::uint64_t>> ext_sorted(exts.begin(), exts.end());
  std::sort(ext_sorted.begin(), ext_sorted.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  std::printf("STDIO file extensions (top 5; §3.3.2 expects .rst/.dat/.vol ~70%%):\n");
  std::uint64_t total = 0;
  for (const auto& [e, n] : ext_sorted) total += n;
  for (std::size_t i = 0; i < std::min<std::size_t>(5, ext_sorted.size()); ++i) {
    std::printf("  %-8s %6llu (%.1f%%)\n", ext_sorted[i].first.c_str(),
                static_cast<unsigned long long>(ext_sorted[i].second),
                100.0 * double(ext_sorted[i].second) / double(std::max<std::uint64_t>(1, total)));
  }
  std::printf("\n");
}

void report_performance_gap(const core::Analysis& all, const sim::Machine& machine) {
  std::printf("Delivered bandwidth, POSIX vs STDIO (shared files, cf. Figs. 11/12):\n");
  const auto& bins = core::Performance::bins();
  util::Table t({"layer", "dir", "bin", "POSIX median MB/s", "STDIO median MB/s", "gap"});
  for (const core::Layer layer : {core::Layer::kInSystem, core::Layer::kPfs}) {
    for (const bool read : {true, false}) {
      for (std::size_t b = 0; b < bins.size(); ++b) {
        const auto p = all.performance().cell(layer, 0, b, read);
        const auto s = all.performance().cell(layer, 1, b, read);
        if (p.count == 0 || s.count == 0) continue;
        t.add_row({std::string(core::layer_name(layer)), read ? "read" : "write",
                   bins.label(b), util::format_fixed(p.median, 0),
                   util::format_fixed(s.median, 0),
                   util::format_fixed(p.median / std::max(1.0, s.median), 2) + "x"});
      }
    }
  }
  std::printf("%s\n", t.to_string().c_str());

  // Rec. 6 what-if: route a representative STDIO stream through a buffered
  // aggregating layer (library-level collective buffering), i.e. re-time it
  // as POSIX with 4 MiB requests.
  const sim::PerfModel& model = machine.perf_model();
  sim::AccessRequest req;
  req.layer = &machine.pfs();
  req.dir = sim::Direction::kRead;
  req.total_bytes = 512 * util::kMB;
  req.op_size = 1024;
  req.streams = 1;
  req.nodes = 1;
  req.contention = 0.002;
  req.node_link_bw = machine.node_link_bw();
  util::Rng rng(3);
  req.placement = machine.pfs().place(req.total_bytes, 0, rng);

  req.iface = sim::Interface::kStdio;
  const double stdio_bw = model.aggregate_bandwidth(req);
  req.iface = sim::Interface::kPosix;
  req.op_size = 4 * util::kMiB;
  req.streams = 4;
  const double aggregated_bw = model.aggregate_bandwidth(req);
  std::printf("Rec. 6 what-if (512 MB read, 1 KB fscanf stream vs middleware aggregation "
              "at 4 MiB x4 streams): %s -> %s (%.1fx)\n\n",
              util::format_bandwidth(stdio_bw).c_str(),
              util::format_bandwidth(aggregated_bw).c_str(), aggregated_bw / stdio_bw);
}

}  // namespace

int main(int argc, char** argv) {
  const bool summit = argc < 2 || std::strcmp(argv[1], "cori") != 0;
  const std::uint64_t n_jobs = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 400;
  const std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 42;

  const wl::SystemProfile& prof =
      summit ? wl::SystemProfile::summit_2020() : wl::SystemProfile::cori_2019();

  wl::GeneratorConfig cfg;
  cfg.n_jobs = n_jobs;
  cfg.seed = seed;
  cfg.logs_per_job_scale = 0.25;
  cfg.files_per_log_scale = 0.25;
  const wl::WorkloadGenerator gen(prof, cfg);

  std::printf("== STDIO study: %s, %llu jobs ==\n\n", prof.system.c_str(),
              static_cast<unsigned long long>(n_jobs));
  const wl::PipelineResult result = wl::run_pipeline(gen);
  const core::Analysis all = result.combined();

  report_usage(all);
  report_domains(all);
  report_performance_gap(all, wl::machine_for(prof));

  const double job_share = 100.0 * double(all.interfaces().stdio_jobs()) /
                           std::max(1.0, double(all.summary().jobs()));
  std::printf("Jobs using STDIO: %.1f%% (paper: ~62%% Summit / ~38%% Cori)\n", job_share);
  return 0;
}
