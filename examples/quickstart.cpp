// Quickstart: generate a small synthetic production workload for Summit,
// simulate it on the two-layer I/O subsystem, and run the paper's analyses
// over the resulting Darshan logs.
//
//   ./quickstart [n_jobs] [seed]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/analysis.hpp"
#include "util/table.hpp"
#include "util/units.hpp"
#include "workload/pipeline.hpp"

int main(int argc, char** argv) {
  using namespace mlio;

  wl::GeneratorConfig cfg;
  cfg.n_jobs = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 200;
  cfg.seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 42;
  cfg.logs_per_job_scale = 0.25;
  cfg.files_per_log_scale = 0.25;

  const wl::WorkloadGenerator gen(wl::SystemProfile::summit_2020(), cfg);
  std::printf("Generating %llu Summit jobs (seed %llu)...\n",
              static_cast<unsigned long long>(cfg.n_jobs),
              static_cast<unsigned long long>(cfg.seed));

  const wl::PipelineResult result = wl::run_pipeline(gen);
  const core::Analysis all = result.combined();

  std::printf("\n== Census (cf. Table 2) ==\n");
  std::printf("logs: %llu   jobs: %llu   files: %llu   node-hours: %s\n",
              static_cast<unsigned long long>(all.summary().logs()),
              static_cast<unsigned long long>(all.summary().jobs()),
              static_cast<unsigned long long>(all.summary().files()),
              util::format_count(all.summary().node_hours()).c_str());

  std::printf("\n== Per-layer volumes (cf. Table 3) ==\n");
  util::Table t({"layer", "files", "read", "write"});
  for (const core::Layer layer : {core::Layer::kInSystem, core::Layer::kPfs}) {
    const auto& st = all.access().layer(layer);
    t.add_row({std::string(core::layer_name(layer)), util::format_count(double(st.files)),
               util::format_bytes(st.bytes_read), util::format_bytes(st.bytes_written)});
  }
  std::printf("%s", t.to_string().c_str());

  std::printf("\n== POSIX/STDIO median bandwidth ratio, PFS reads (cf. Fig. 11a) ==\n");
  const auto& bins = core::Performance::bins();
  for (std::size_t b = 0; b < bins.size(); ++b) {
    // Skip thin cells: medians over a handful of files are noise.
    const auto p = all.performance().cell(core::Layer::kPfs, 0, b, true);
    const auto s = all.performance().cell(core::Layer::kPfs, 1, b, true);
    if (p.count < 10 || s.count < 10) continue;
    const double ratio = all.performance().posix_over_stdio(core::Layer::kPfs, b, true);
    if (ratio > 0) std::printf("  %-10s POSIX is %.1fx STDIO\n", bins.label(b).c_str(), ratio);
  }

  std::printf("\nDone. %llu shared-file performance observations.\n",
              static_cast<unsigned long long>(all.performance().observations()));
  return 0;
}
