// staging_advisor — the tool Recommendation 3 calls for.
//
// The paper finds that 95.7% (Summit) / 90.1% (Cori) of PFS files are
// read-only or write-only, i.e. stageable to the in-system layer without
// coherence concerns, yet almost nobody stages.  This example analyzes a
// job population, identifies the stageable PFS traffic, and estimates the
// end-to-end benefit of DataWarp-style stage-in/stage-out for each job:
//
//   benefit = time(PFS direct) - [time(in-system) + amortized staging time]
//
//   ./staging_advisor [cori|summit] [n_jobs] [seed]
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "iosim/executor.hpp"
#include "util/table.hpp"
#include "util/units.hpp"
#include "workload/generator.hpp"
#include "workload/pipeline.hpp"

namespace {

using namespace mlio;

struct JobAdvice {
  std::uint64_t job_id = 0;
  std::string domain;
  std::uint64_t stageable_bytes = 0;
  double direct_seconds = 0;
  double staged_seconds = 0;  ///< in-system I/O + stage traffic
  double speedup() const {
    return staged_seconds > 0 ? direct_seconds / staged_seconds : 0.0;
  }
};

/// Time the job's PFS I/O as-is vs. re-pointed at the in-system layer with
/// explicit staging of the read-only inputs and write-only outputs.
JobAdvice advise(const sim::JobExecutor& executor, const sim::Machine& machine,
                 const sim::JobSpec& spec) {
  JobAdvice advice;
  advice.job_id = spec.job_id;
  advice.domain = spec.domain;

  const std::string pfs_prefix = machine.pfs().mount_prefix();
  const std::string insys_prefix = machine.in_system().mount_prefix();

  sim::JobSpec staged = spec;
  staged.job_id = spec.job_id ^ 0x5747ull;  // fresh rng stream for the variant
  std::uint64_t stage_in_bytes = 0, stage_out_bytes = 0;
  for (auto& f : staged.files) {
    if (!f.path.starts_with(pfs_prefix)) continue;
    const bool ro = f.read_bytes > 0 && f.write_bytes == 0;
    const bool wo = f.write_bytes > 0 && f.read_bytes == 0;
    if (!ro && !wo) continue;  // read-write files stay on the PFS
    advice.stageable_bytes += f.read_bytes + f.write_bytes;
    if (ro) stage_in_bytes += f.read_bytes;
    if (wo) stage_out_bytes += f.write_bytes;
    f.path = insys_prefix + f.path.substr(pfs_prefix.size());
  }
  staged.dw.capacity_request = stage_in_bytes + stage_out_bytes;
  if (stage_in_bytes > 0) {
    staged.dw.stage_in.push_back({insys_prefix + "/in", pfs_prefix + "/in", stage_in_bytes});
  }
  if (stage_out_bytes > 0) {
    staged.dw.stage_out.push_back(
        {insys_prefix + "/out", pfs_prefix + "/out", stage_out_bytes});
  }

  auto io_seconds = [](const darshan::LogData& log) {
    double total = 0;
    for (const auto& r : log.records) {
      // fcounter layout is shared across modules: indices 6/7 are the
      // read/write times.
      if (r.module == darshan::ModuleId::kLustre) continue;
      if (r.module == darshan::ModuleId::kMpiIo) continue;  // avoid double count
      total += r.fcounters[6] + r.fcounters[7];
    }
    return total;
  };

  advice.direct_seconds = io_seconds(executor.execute(spec));
  const sim::StagingReport rep = executor.estimate_staging(staged);
  advice.staged_seconds =
      io_seconds(executor.execute(staged)) + rep.seconds_in + rep.seconds_out;
  return advice;
}

}  // namespace

int main(int argc, char** argv) {
  const bool cori = argc < 2 || std::strcmp(argv[1], "summit") != 0;
  const std::uint64_t n_jobs = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 150;
  const std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 42;

  const wl::SystemProfile& prof =
      cori ? wl::SystemProfile::cori_2019() : wl::SystemProfile::summit_2020();
  const sim::Machine& machine = wl::machine_for(prof);
  const sim::JobExecutor executor(machine);

  wl::GeneratorConfig cfg;
  cfg.n_jobs = n_jobs;
  cfg.seed = seed;
  cfg.logs_per_job_scale = 0.2;
  cfg.files_per_log_scale = 0.2;
  const wl::WorkloadGenerator gen(prof, cfg);

  std::printf("Analyzing %llu %s jobs for staging opportunities (Rec. 3)...\n\n",
              static_cast<unsigned long long>(n_jobs), prof.system.c_str());

  std::vector<JobAdvice> advices;
  std::uint64_t total_pfs_files = 0, stageable_files = 0;
  gen.generate_bulk([&](const sim::JobSpec& spec) {
    for (const auto& f : spec.files) {
      if (!f.path.starts_with(machine.pfs().mount_prefix())) continue;
      ++total_pfs_files;
      const bool rw = f.read_bytes > 0 && f.write_bytes > 0;
      if (!rw) ++stageable_files;
    }
    advices.push_back(advise(executor, machine, spec));
  });

  std::printf("PFS files: %llu, stageable (RO or WO): %llu (%.1f%%; paper: %.1f%%)\n\n",
              static_cast<unsigned long long>(total_pfs_files),
              static_cast<unsigned long long>(stageable_files),
              100.0 * double(stageable_files) / double(std::max<std::uint64_t>(1, total_pfs_files)),
              cori ? 90.1 : 95.7);

  std::sort(advices.begin(), advices.end(), [](const JobAdvice& a, const JobAdvice& b) {
    return a.direct_seconds - a.staged_seconds > b.direct_seconds - b.staged_seconds;
  });

  util::Table t({"job", "domain", "stageable data", "direct I/O", "staged I/O", "speedup"});
  std::size_t shown = 0;
  double total_direct = 0, total_staged = 0;
  for (const auto& a : advices) {
    total_direct += a.direct_seconds;
    total_staged += a.staged_seconds;
    if (a.stageable_bytes == 0 || shown >= 12) continue;
    ++shown;
    t.add_row({std::to_string(a.job_id), a.domain.empty() ? "Unknown" : a.domain,
               util::format_bytes(double(a.stageable_bytes)),
               util::format_fixed(a.direct_seconds, 1) + " s",
               util::format_fixed(a.staged_seconds, 1) + " s",
               util::format_fixed(a.speedup(), 2) + "x"});
  }
  std::printf("Top staging candidates:\n%s", t.to_string().c_str());
  std::printf("\nPopulation-wide: direct %.0f s vs staged %.0f s of I/O time (%.2fx)\n",
              total_direct, total_staged,
              total_staged > 0 ? total_direct / total_staged : 0.0);
  std::printf("Rec. 3: convenient data-staging tools could claim this automatically.\n");
  return 0;
}
