// darshan_dump — a darshan-parser-style CLI: print the contents of a log
// file produced by this library.
//
//   ./darshan_dump <log-file> [--records] [--counters]
//
// With no flags, prints the job header, mount table, and per-module record
// counts.  --records adds one line per file record; --counters dumps every
// counter of every record (darshan-parser's default verbosity).
//
// To produce a log file to inspect, run `./quickstart_logs` or use
// darshan::write_log_file from your own code.
#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include "darshan/log_format.hpp"
#include "util/units.hpp"

namespace {

using namespace mlio;
using darshan::LogData;
using darshan::ModuleId;

void print_header(const LogData& log) {
  const auto& j = log.job;
  std::printf("# darshan log\n");
  std::printf("# job id     : %llu\n", static_cast<unsigned long long>(j.job_id));
  std::printf("# user id    : %u\n", j.user_id);
  std::printf("# nprocs     : %u  (nodes: %u)\n", j.nprocs, j.nnodes);
  std::printf("# start/end  : %lld .. %lld (%lld s)\n",
              static_cast<long long>(j.start_time), static_cast<long long>(j.end_time),
              static_cast<long long>(j.end_time - j.start_time));
  std::printf("# exe        : %s\n", j.exe.c_str());
  for (const auto& [k, v] : j.metadata) std::printf("# meta %-6s: %s\n", k.c_str(), v.c_str());
  std::printf("#\n# mount table:\n");
  for (const auto& m : log.mounts) {
    std::printf("#   %-30s %s\n", m.prefix.c_str(), m.fs_type.c_str());
  }
}

void print_summary(const LogData& log) {
  std::map<ModuleId, std::size_t> counts;
  for (const auto& r : log.records) counts[r.module] += 1;
  std::printf("#\n# records: %zu total across %zu names\n", log.records.size(),
              log.names.size());
  for (const auto& [mod, n] : counts) {
    std::printf("#   %-7s %zu\n", std::string(module_name(mod)).c_str(), n);
  }
}

void print_records(const LogData& log, bool with_counters) {
  std::printf("\n#module\trank\trecord_id\tpath\n");
  for (const auto& r : log.records) {
    std::printf("%s\t%d\t%016llx\t%s\n", std::string(module_name(r.module)).c_str(), r.rank,
                static_cast<unsigned long long>(r.record_id),
                std::string(log.path_of(r.record_id)).c_str());
    if (!with_counters) continue;
    for (std::size_t i = 0; i < r.counters.size(); ++i) {
      std::printf("  %-32s %lld\n", std::string(counter_name(r.module, i)).c_str(),
                  static_cast<long long>(r.counters[i]));
    }
    for (std::size_t i = 0; i < r.fcounters.size(); ++i) {
      std::printf("  %-32s %.6f\n", std::string(fcounter_name(r.module, i)).c_str(),
                  r.fcounters[i]);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <log-file> [--records] [--counters]\n", argv[0]);
    return 2;
  }
  bool records = false, counters = false;
  for (int i = 2; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--records")) records = true;
    else if (!std::strcmp(argv[i], "--counters")) records = counters = true;
    else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    }
  }

  try {
    const LogData log = darshan::read_log_file(argv[1]);
    print_header(log);
    print_summary(log);
    if (records) print_records(log, counters);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
