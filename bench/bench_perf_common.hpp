// Shared rendering for the Figs. 11/12 performance benches.
#pragma once

#include "bench_common.hpp"
#include "core/performance.hpp"

namespace mlio::bench {

struct RatioCheck {
  core::Layer layer;
  bool read;
  std::size_t bin;                 ///< perf transfer bin index
  const char* paper;               ///< paper's reported POSIX/STDIO ratio
};

inline void print_perf_figure(const Args& args, const SystemRun& run,
                              std::span<const RatioCheck> checks) {
  const core::Analysis all = run.result.combined();
  const core::Performance& perf = all.performance();
  const auto& bins = core::Performance::bins();

  util::Table t({"layer", "iface", "dir", "bin", "n", "min MB/s", "q1", "median", "q3",
                 "max MB/s"});
  const char* iface_names[2] = {"POSIX", "STDIO"};
  for (int li = 0; li < 2; ++li) {
    const auto layer = li == 0 ? core::Layer::kInSystem : core::Layer::kPfs;
    const char* lname =
        li == 0 ? (run.profile->system == "Summit" ? "SCNL" : "CBB") : "PFS";
    for (std::size_t iface = 0; iface < 2; ++iface) {
      for (const bool read : {true, false}) {
        for (std::size_t b = 0; b < bins.size(); ++b) {
          const util::FiveNumber f = perf.cell(layer, iface, b, read);
          if (f.count == 0) continue;  // empty boxes are omitted, as in the figure
          t.add_row({lname, iface_names[iface], read ? "read" : "write", bins.label(b),
                     std::to_string(f.count), fmt(f.min, 1), fmt(f.q1, 1), fmt(f.median, 1),
                     fmt(f.q3, 1), fmt(f.max, 1)});
        }
      }
    }
    t.add_separator();
  }
  emit(args, t);

  util::Table ratio_table({"layer", "dir", "bin", "paper POSIX/STDIO", "measured"});
  for (const RatioCheck& c : checks) {
    const double r = perf.posix_over_stdio(c.layer, c.bin, c.read);
    ratio_table.add_row({c.layer == core::Layer::kPfs ? "PFS" : "in-system",
                         c.read ? "read" : "write", bins.label(c.bin), c.paper,
                         r > 0 ? fmt(r, 2) + "x" : "n/a (empty cell)"});
  }
  std::printf("\nMedian-bandwidth ratio checks (POSIX over STDIO):\n");
  emit(args, ratio_table);
  std::printf("\nTotal shared-file observations: %llu\n",
              static_cast<unsigned long long>(perf.observations()));
}

}  // namespace mlio::bench
