// Shared infrastructure for the per-table / per-figure bench binaries.
//
// Every bench accepts:
//   --jobs N        bulk jobs per system (default varies per bench)
//   --seed S        generator seed (default 42)
//   --logs-scale X  logs-per-job mean scale (default 0.25)
//   --files-scale X files-per-log mean scale (default 0.25)
//   --threads T     worker threads (default: hardware)
//   --csv           emit CSV instead of ASCII tables
//
// Benches print the paper's reported value next to the measured/estimated
// value.  Full-scale estimates multiply bulk measurements by the generator's
// scale factors and add the full-scale huge stratum where applicable
// (DESIGN.md §4).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/analysis.hpp"
#include "util/table.hpp"
#include "util/units.hpp"
#include "workload/pipeline.hpp"

namespace mlio::bench {

struct Args {
  std::uint64_t jobs = 600;
  std::uint64_t seed = 42;
  double logs_scale = 0.25;
  double files_scale = 0.25;
  unsigned threads = 0;
  bool csv = false;

  static Args parse(int argc, char** argv, std::uint64_t default_jobs) {
    Args args;
    args.jobs = default_jobs;
    for (int i = 1; i < argc; ++i) {
      auto next = [&](const char* flag) -> const char* {
        if (i + 1 >= argc) {
          std::fprintf(stderr, "missing value for %s\n", flag);
          std::exit(2);
        }
        return argv[++i];
      };
      if (!std::strcmp(argv[i], "--jobs")) args.jobs = std::strtoull(next("--jobs"), nullptr, 10);
      else if (!std::strcmp(argv[i], "--seed")) args.seed = std::strtoull(next("--seed"), nullptr, 10);
      else if (!std::strcmp(argv[i], "--logs-scale")) args.logs_scale = std::strtod(next("--logs-scale"), nullptr);
      else if (!std::strcmp(argv[i], "--files-scale")) args.files_scale = std::strtod(next("--files-scale"), nullptr);
      else if (!std::strcmp(argv[i], "--threads")) args.threads = static_cast<unsigned>(std::strtoul(next("--threads"), nullptr, 10));
      else if (!std::strcmp(argv[i], "--csv")) args.csv = true;
      else if (!std::strcmp(argv[i], "--help")) {
        std::printf("usage: %s [--jobs N] [--seed S] [--logs-scale X] [--files-scale X] "
                    "[--threads T] [--csv]\n", argv[0]);
        std::exit(0);
      } else {
        std::fprintf(stderr, "unknown flag %s (try --help)\n", argv[i]);
        std::exit(2);
      }
    }
    return args;
  }
};

/// One system's generated+simulated+analyzed population.
struct SystemRun {
  const wl::SystemProfile* profile;
  wl::WorkloadGenerator gen;
  wl::PipelineResult result;
};

inline SystemRun run_system(const wl::SystemProfile& profile, const Args& args,
                            bool include_huge = true) {
  wl::GeneratorConfig cfg;
  cfg.seed = args.seed;
  cfg.n_jobs = args.jobs;
  cfg.logs_per_job_scale = args.logs_scale;
  cfg.files_per_log_scale = args.files_scale;
  wl::WorkloadGenerator gen(profile, cfg);
  wl::PipelineOptions opts;
  opts.threads = args.threads;
  opts.include_huge = include_huge;
  std::fprintf(stderr, "[%s] generating %llu jobs (seed %llu)...\n", profile.system.c_str(),
               static_cast<unsigned long long>(args.jobs),
               static_cast<unsigned long long>(args.seed));
  wl::PipelineResult result = wl::run_pipeline(gen, opts);
  return SystemRun{&profile, std::move(gen), std::move(result)};
}

inline void emit(const Args& args, const util::Table& table) {
  std::printf("%s", (args.csv ? table.to_csv() : table.to_string()).c_str());
}

inline std::string fmt(double v, int digits = 2) { return util::format_fixed(v, digits); }

/// "paper -> measured" convenience: percent deviation string, or "n/a".
inline std::string deviation(double paper, double measured) {
  if (paper == 0) return measured == 0 ? "exact" : "n/a";
  return util::format_fixed(100.0 * (measured - paper) / paper, 1) + "%";
}

inline void header(const char* experiment, const char* caption) {
  std::printf("\n=== %s ===\n%s\n\n", experiment, caption);
}

}  // namespace mlio::bench
