// Archive throughput driver: measures ingest rate and cold- vs warm-query
// latency of the partitioned log archive and writes the numbers to
// BENCH_archive.json so the trajectory is tracked across PRs.
//
//   ingest — generate the population and append it as --batches partitions
//            (+ the huge stratum) through the pipeline's archive-sink mode.
//   cold   — first query: every partition shard rebuilt from its segment.
//            The rebuild cost is split into parse/summarize/accumulate phase
//            seconds (CPU seconds summed across workers, so they can exceed
//            the scan wall time) — the same phase axes bench_analysis tracks
//            single-threaded.
//   warm   — second query: every shard served from the snapshot cache.
//   sweep  — partition-count sweep (--sweep, default 9,36,144): at each
//            point, the warm-query cost of the LINEAR lane (query_archive:
//            resolve + fold all P shards every time) against the MEMOIZED
//            service lane (generation-delta engine, DESIGN.md §12: a warm
//            get at an unchanged generation is one cache lookup).  The
//            linear lane grows with P; the memoized lane must stay ~flat.
//   live   — (--live-jobs N, 0 = skip) the continuous-mode lane (DESIGN.md
//            §14): run_live_soak streams the pool through time-windowed
//            cuts while windowed readers and the BACKGROUND leveled
//            compactor race it, then drains the policy to its fixed point.
//            The JSON records steady-state logs/s, the live partition count
//            and its post-drain ceiling vs windows published, and the
//            bit-identity verdict (every pinned answer vs serial replay).
//   scale  — (--scale-jobs N, 0 = skip) the fleet-scale milestone lane: a
//            large facility ingested once per --ingest-threads value
//            (partition-parallel build, group manifest commit, DESIGN.md
//            §13), with per-phase ingest timings, cold/warm query times at
//            that size, and a cross-thread-count digest of every archive
//            byte — the determinism contract ("fixed cuts → fixed bits")
//            checked at scale.  Lanes pin --threads 1 inside each partition
//            so ingest_logs_per_s isolates partition parallelism.
//
// cold and warm must agree bit for bit (the archive's determinism
// contract); the JSON records the fingerprint comparison alongside the
// speedup so a caching regression is visible as either wrong bits or a
// missing win.  The sweep applies the same rule: both lanes must answer
// with the same fingerprint at every partition count.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "archive/ingest.hpp"
#include "archive/query.hpp"
#include "service/driver.hpp"
#include "service/service.hpp"
#include "util/compress.hpp"
#include "util/vfs.hpp"
#include "workload/pipeline.hpp"

namespace {

using namespace mlio;

struct Args {
  std::uint64_t jobs = 600;
  std::uint64_t seed = 42;
  std::uint64_t batches = 8;
  double logs_scale = 0.25;
  double files_scale = 0.25;
  unsigned threads = 0;
  unsigned reps = 3;
  unsigned mlp_depth = archive::kDefaultMlpDepth;
  bool compress = true;
  std::vector<unsigned> sweep = {9, 36, 144};  ///< partition counts; empty = skip
  std::uint64_t live_jobs = 0;      ///< live-lane frame pool size; 0 = skip
  unsigned live_readers = 2;        ///< concurrent windowed readers
  unsigned live_fanout = 4;         ///< leveled policy fanout
  std::int64_t live_window = 86400; ///< window width (seconds of job start time)
  std::uint64_t scale_jobs = 0;     ///< scale-lane facility size; 0 = skip
  std::uint64_t scale_batches = 0;  ///< scale-lane partitions; 0 = auto
  std::vector<unsigned> ingest_threads = {1, 4};  ///< scale-lane worker counts
  std::string dir;
  std::string out = "BENCH_archive.json";
};

std::vector<unsigned> parse_sweep(const char* s) {
  std::vector<unsigned> out;
  for (const char* p = s; *p != '\0';) {
    const unsigned v = static_cast<unsigned>(std::strtoul(p, const_cast<char**>(&p), 10));
    if (v > 0) out.push_back(v);
    if (*p == ',') ++p;
  }
  return out;  // "--sweep 0" (or garbage) yields empty = sweep disabled
}

Args parse(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--jobs")) a.jobs = std::strtoull(next("--jobs"), nullptr, 10);
    else if (!std::strcmp(argv[i], "--seed")) a.seed = std::strtoull(next("--seed"), nullptr, 10);
    else if (!std::strcmp(argv[i], "--batches")) a.batches = std::strtoull(next("--batches"), nullptr, 10);
    else if (!std::strcmp(argv[i], "--logs-scale")) a.logs_scale = std::strtod(next("--logs-scale"), nullptr);
    else if (!std::strcmp(argv[i], "--files-scale")) a.files_scale = std::strtod(next("--files-scale"), nullptr);
    else if (!std::strcmp(argv[i], "--threads")) a.threads = static_cast<unsigned>(std::strtoul(next("--threads"), nullptr, 10));
    else if (!std::strcmp(argv[i], "--reps")) a.reps = static_cast<unsigned>(std::strtoul(next("--reps"), nullptr, 10));
    else if (!std::strcmp(argv[i], "--mlp-depth")) a.mlp_depth = static_cast<unsigned>(std::strtoul(next("--mlp-depth"), nullptr, 10));
    else if (!std::strcmp(argv[i], "--no-compress")) a.compress = false;
    else if (!std::strcmp(argv[i], "--sweep")) a.sweep = parse_sweep(next("--sweep"));
    else if (!std::strcmp(argv[i], "--live-jobs")) a.live_jobs = std::strtoull(next("--live-jobs"), nullptr, 10);
    else if (!std::strcmp(argv[i], "--live-readers")) a.live_readers = static_cast<unsigned>(std::strtoul(next("--live-readers"), nullptr, 10));
    else if (!std::strcmp(argv[i], "--live-fanout")) a.live_fanout = static_cast<unsigned>(std::strtoul(next("--live-fanout"), nullptr, 10));
    else if (!std::strcmp(argv[i], "--live-window")) a.live_window = std::strtoll(next("--live-window"), nullptr, 10);
    else if (!std::strcmp(argv[i], "--scale-jobs")) a.scale_jobs = std::strtoull(next("--scale-jobs"), nullptr, 10);
    else if (!std::strcmp(argv[i], "--scale-batches")) a.scale_batches = std::strtoull(next("--scale-batches"), nullptr, 10);
    else if (!std::strcmp(argv[i], "--ingest-threads")) a.ingest_threads = parse_sweep(next("--ingest-threads"));
    else if (!std::strcmp(argv[i], "--dir")) a.dir = next("--dir");
    else if (!std::strcmp(argv[i], "--out")) a.out = next("--out");
    else if (!std::strcmp(argv[i], "--help")) {
      std::printf("usage: %s [--jobs N] [--seed S] [--batches B] [--logs-scale X]\n"
                  "          [--files-scale X] [--threads T] [--reps R] [--mlp-depth K]\n"
                  "          [--no-compress] [--sweep P1,P2,... (0 = skip)] [--dir DIR]\n"
                  "          [--live-jobs N (0 = skip)] [--live-readers R] [--live-fanout F]\n"
                  "          [--live-window SECONDS]\n"
                  "          [--scale-jobs N (0 = skip)] [--scale-batches B (0 = auto)]\n"
                  "          [--ingest-threads T1,T2,...] [--out FILE]\n", argv[0]);
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown flag %s (try --help)\n", argv[i]);
      std::exit(2);
    }
  }
  return a;
}

struct Rep {
  archive::IngestStats ingest;
  archive::QueryStats cold;
  archive::QueryStats warm;
  std::uint64_t cold_fp = 0;
  std::uint64_t warm_fp = 0;
};

/// One partition-sweep point: warm-query cost linear lane vs memoized lane.
struct SweepPoint {
  unsigned partitions = 0;
  double linear_warm_s = 0;  ///< best warm query_archive total (resolves all P)
  double linear_merge_s = 0; ///< its shard-fold component
  double memo_warm_s = 0;    ///< best warm service get (merged-result hit)
  std::uint64_t memo_hits = 0;
  bool fingerprints_match = false;
  double speedup() const { return memo_warm_s > 0 ? linear_warm_s / memo_warm_s : 0.0; }
};

void print_query(const char* label, const archive::QueryStats& s) {
  std::printf("  %-5s %8.4f s  (%llu/%llu partitions from cache, %llu logs decoded)\n", label,
              s.total_seconds, static_cast<unsigned long long>(s.snapshot_hits),
              static_cast<unsigned long long>(s.partitions),
              static_cast<unsigned long long>(s.logs_scanned));
}

/// One scale-milestone ingest lane (a thread count) plus its archive digest.
struct ScaleLane {
  unsigned ingest_threads = 0;
  archive::IngestStats ingest;
  std::uint64_t digest = 0;  ///< FNV over (name, size, CRC) of every file
  std::uint64_t files = 0;
};

struct ScaleResult {
  std::uint64_t jobs = 0;
  std::uint64_t batches = 0;
  std::uint64_t logs = 0;
  std::uint64_t bytes = 0;
  std::vector<ScaleLane> lanes;
  bool bytes_identical = true;  ///< every lane produced the same archive bytes
  double cold_s = 0, warm_s = 0;
  std::uint64_t cold_fp = 0, warm_fp = 0;
  double speedup = 0;  ///< best parallel lane logs/s over the serial lane
};

/// Digest every file of an archive directory: sorted names, each file's size
/// and CRC folded into one FNV-1a word.  Equal digests + equal file counts
/// mean byte-identical archives (CRC-32 per file, manifest included).
std::uint64_t dir_digest(const std::filesystem::path& dir, std::uint64_t& files) {
  std::vector<std::filesystem::path> paths;
  for (const auto& e : std::filesystem::directory_iterator(dir)) {
    if (e.is_regular_file()) paths.push_back(e.path());
  }
  std::sort(paths.begin(), paths.end());
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  for (const std::filesystem::path& p : paths) {
    for (const char c : p.filename().string()) mix(static_cast<unsigned char>(c));
    const std::vector<std::byte> bytes = util::real_vfs().read_file(p);
    mix(bytes.size());
    mix(util::crc32(bytes));
    files += 1;
  }
  return h;
}

void print_phases(const archive::IngestStats& s) {
  std::printf("        phases: serialize %.2f s, compress %.2f s, snapshot %.2f s (cpu); "
              "publish %.2f s (wall, %llu group commit(s))\n",
              static_cast<double>(s.serialize_ns) * 1e-9,
              static_cast<double>(s.compress_ns) * 1e-9,
              static_cast<double>(s.snapshot_ns) * 1e-9,
              static_cast<double>(s.publish_ns) * 1e-9,
              static_cast<unsigned long long>(s.groups));
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse(argc, argv);

  wl::GeneratorConfig cfg;
  cfg.seed = args.seed;
  cfg.n_jobs = args.jobs;
  cfg.logs_per_job_scale = args.logs_scale;
  cfg.files_per_log_scale = args.files_scale;
  const wl::WorkloadGenerator gen(wl::SystemProfile::cori_2019(), cfg);

  const std::filesystem::path base =
      args.dir.empty() ? std::filesystem::temp_directory_path() / "mlio_bench_archive"
                       : std::filesystem::path(args.dir);

  std::vector<Rep> reps;
  // One QueryScratch across every query of every rep: the cold and warm
  // passes (and later reps) reuse the workers' decode and summarize
  // buffers instead of reallocating them per query.
  archive::QueryScratch query_scratch;
  for (unsigned rep = 0; rep < args.reps; ++rep) {
    const std::filesystem::path dir = base / ("rep" + std::to_string(rep));
    std::filesystem::remove_all(dir);

    Rep r;
    archive::Archive ar = archive::Archive::create(dir);
    archive::IngestOptions iopts;
    iopts.batches = args.batches;
    iopts.threads = args.threads;
    iopts.write_options.compress = args.compress;
    r.ingest = archive::ingest_generated(ar, gen, iopts);

    archive::QueryOptions qopts;
    qopts.threads = args.threads;
    qopts.mlp_depth = args.mlp_depth;
    const archive::QueryResult cold = query_archive(ar, qopts, query_scratch);
    r.cold = cold.stats;
    r.cold_fp = cold.analysis.fingerprint();
    const archive::QueryResult warm = query_archive(ar, qopts, query_scratch);
    r.warm = warm.stats;
    r.warm_fp = warm.analysis.fingerprint();

    std::printf("rep %u: ingest %.3f s (%.0f logs/s, %llu partitions)\n", rep,
                r.ingest.seconds, r.ingest.logs_per_second(),
                static_cast<unsigned long long>(r.ingest.partitions));
    print_phases(r.ingest);
    print_query("cold", r.cold);
    print_query("warm", r.warm);
    reps.push_back(r);
    std::filesystem::remove_all(dir);
  }

  // Partition sweep: how warm-query cost scales with P for the linear
  // query_archive lane (resolve + fold everything, every time) vs the
  // memoized service lane (one whole-answer lookup at an unchanged
  // generation).  Both lanes serve the same archive and must agree bit for
  // bit.
  std::vector<SweepPoint> sweep;
  for (const unsigned parts : args.sweep) {
    const std::filesystem::path dir = base / ("sweep" + std::to_string(parts));
    std::filesystem::remove_all(dir);

    SweepPoint pt;
    pt.partitions = parts;
    archive::Archive ar = archive::Archive::create(dir);
    archive::IngestOptions iopts;
    iopts.batches = parts;
    iopts.threads = args.threads;
    iopts.write_options.compress = args.compress;
    archive::ingest_generated(ar, gen, iopts);

    archive::QueryOptions qopts;
    qopts.threads = args.threads;
    qopts.mlp_depth = args.mlp_depth;
    std::uint64_t linear_fp = 0;
    {
      const archive::QueryResult cold = query_archive(ar, qopts, query_scratch);
      linear_fp = cold.analysis.fingerprint();
      pt.linear_warm_s = 0;
      for (unsigned rep = 0; rep < args.reps; ++rep) {
        const archive::QueryResult warm = query_archive(ar, qopts, query_scratch);
        if (rep == 0 || warm.stats.total_seconds < pt.linear_warm_s) {
          pt.linear_warm_s = warm.stats.total_seconds;
          pt.linear_merge_s = warm.stats.merge_seconds;
        }
      }
    }
    {
      service::ArchiveService svc(dir, {});  // merged-result memo on by default
      const std::uint64_t memo_fp = svc.get().fingerprint;  // priming: full merge
      pt.fingerprints_match = memo_fp == linear_fp;
      pt.memo_warm_s = 0;
      for (unsigned rep = 0; rep < args.reps; ++rep) {
        const auto r = svc.get();
        pt.memo_hits += r.stats.query.merged_hits;
        pt.fingerprints_match = pt.fingerprints_match && r.fingerprint == linear_fp;
        if (rep == 0 || r.stats.query.total_seconds < pt.memo_warm_s) {
          pt.memo_warm_s = r.stats.query.total_seconds;
        }
      }
    }
    std::printf("sweep P=%3u: linear warm %.5f s (merge %.5f s) vs memoized %.7f s "
                "(%.0fx, bits %s)\n",
                parts, pt.linear_warm_s, pt.linear_merge_s, pt.memo_warm_s, pt.speedup(),
                pt.fingerprints_match ? "match" : "DIVERGE");
    sweep.push_back(pt);
    std::filesystem::remove_all(dir);
  }

  // Live lane: the archive as a running system — streaming window cuts,
  // concurrent windowed readers, the background leveled compactor — then
  // the policy drained to its fixed point for the partition-count ceiling.
  service::LiveReport live;
  std::uint64_t live_partitions_drained = 0;
  bool live_ok = true;
  if (args.live_jobs > 0) {
    const std::filesystem::path dir = base / "live";
    std::filesystem::remove_all(dir);
    { (void)archive::Archive::create(dir); }
    service::ArchiveService::Options sopts;
    sopts.stream.window_seconds = args.live_window;
    service::ArchiveService svc(dir, sopts);

    service::LiveConfig lcfg;
    lcfg.readers = args.live_readers;
    lcfg.compactor.policy.fanout = args.live_fanout;
    const std::vector<service::ServiceFrame> pool =
        service::make_frame_pool(args.live_jobs, args.seed);
    live = service::run_live_soak(svc, lcfg, pool);

    while (svc.compact_step(lcfg.compactor.policy).has_value()) {
    }
    live_partitions_drained = svc.pin().manifest().partitions.size();
    live_ok = live.ok();
    std::printf(
        "live: %.0f logs/s steady state (%llu logs, %llu appends, %llu windows)\n"
        "      %llu windowed gets, %llu background merges, partitions %llu live / %llu drained\n"
        "      verified %llu/%llu generations, divergent %llu, gc pending %llu -> %s\n",
        live.logs_per_second(), static_cast<unsigned long long>(live.logs_streamed),
        static_cast<unsigned long long>(live.appends),
        static_cast<unsigned long long>(live.windows_published),
        static_cast<unsigned long long>(live.window_gets),
        static_cast<unsigned long long>(live.compactions),
        static_cast<unsigned long long>(live.final_partitions),
        static_cast<unsigned long long>(live_partitions_drained),
        static_cast<unsigned long long>(live.verified_generations),
        static_cast<unsigned long long>(live.generations_observed),
        static_cast<unsigned long long>(live.divergent),
        static_cast<unsigned long long>(live.gc_pending_after), live_ok ? "ok" : "FAIL");
    std::filesystem::remove_all(dir);
  }

  // Scale milestone lane: one large facility per ingest-thread count.
  // Every lane must produce the same archive down to the last byte; the
  // first lane also measures cold/warm query time at that size.
  ScaleResult scale;
  bool scale_ok = true;
  if (args.scale_jobs > 0 && !args.ingest_threads.empty()) {
    wl::GeneratorConfig scfg = cfg;
    scfg.n_jobs = args.scale_jobs;
    const wl::WorkloadGenerator sgen(wl::SystemProfile::cori_2019(), scfg);
    const unsigned max_t =
        *std::max_element(args.ingest_threads.begin(), args.ingest_threads.end());
    scale.jobs = args.scale_jobs;
    // Auto batches: enough partitions to keep every worker fed (and each
    // partition's build buffer modest), but coarse enough that manifest and
    // per-partition constant costs stay negligible.
    scale.batches = args.scale_batches != 0
                        ? args.scale_batches
                        : std::max<std::uint64_t>(std::uint64_t{4} * max_t, args.scale_jobs / 512);
    for (std::size_t li = 0; li < args.ingest_threads.size(); ++li) {
      const unsigned t = args.ingest_threads[li];
      const std::filesystem::path dir = base / ("scale_t" + std::to_string(t));
      std::filesystem::remove_all(dir);

      ScaleLane lane;
      lane.ingest_threads = t;
      archive::Archive ar = archive::Archive::create(dir);
      archive::IngestOptions iopts;
      iopts.batches = scale.batches;
      iopts.threads = 1;  // no fan-out inside partitions: isolate partition parallelism
      iopts.ingest_threads = t;
      iopts.write_options.compress = args.compress;
      lane.ingest = archive::ingest_generated(ar, sgen, iopts);
      lane.digest = dir_digest(dir, lane.files);

      std::printf("scale T=%u: ingest %.3f s (%.0f logs/s, %llu logs, %llu partitions)\n", t,
                  lane.ingest.seconds, lane.ingest.logs_per_second(),
                  static_cast<unsigned long long>(lane.ingest.logs),
                  static_cast<unsigned long long>(lane.ingest.partitions));
      print_phases(lane.ingest);

      if (li == 0) {
        scale.logs = lane.ingest.logs;
        scale.bytes = lane.ingest.bytes;
        archive::QueryOptions qopts;
        qopts.threads = args.threads;
        qopts.mlp_depth = args.mlp_depth;
        const archive::QueryResult cold = query_archive(ar, qopts, query_scratch);
        scale.cold_s = cold.stats.total_seconds;
        scale.cold_fp = cold.analysis.fingerprint();
        const archive::QueryResult warm = query_archive(ar, qopts, query_scratch);
        scale.warm_s = warm.stats.total_seconds;
        scale.warm_fp = warm.analysis.fingerprint();
        print_query("cold", cold.stats);
        print_query("warm", warm.stats);
      } else {
        scale.bytes_identical = scale.bytes_identical &&
                                lane.digest == scale.lanes.front().digest &&
                                lane.files == scale.lanes.front().files;
      }
      scale.lanes.push_back(lane);
      std::filesystem::remove_all(dir);
    }
    const ScaleLane* serial = nullptr;
    const ScaleLane* parallel = nullptr;
    for (const ScaleLane& lane : scale.lanes) {
      if (lane.ingest_threads <= 1 && serial == nullptr) serial = &lane;
      if (lane.ingest_threads > 1 &&
          (parallel == nullptr ||
           lane.ingest.logs_per_second() > parallel->ingest.logs_per_second())) {
        parallel = &lane;
      }
    }
    if (serial != nullptr && parallel != nullptr && serial->ingest.logs_per_second() > 0) {
      scale.speedup = parallel->ingest.logs_per_second() / serial->ingest.logs_per_second();
    }
    scale_ok = scale.bytes_identical && scale.cold_fp == scale.warm_fp;
    std::printf("scale: archives %s across thread counts", scale.bytes_identical
                                                               ? "byte-identical"
                                                               : "DIVERGED");
    if (scale.speedup > 0) std::printf(", parallel/serial %.2fx", scale.speedup);
    std::printf("\n");
  }
  if (args.dir.empty()) std::filesystem::remove_all(base);

  bool bit_identical = true;
  bool warm_all_cached = true;
  const Rep* best = &reps.front();
  for (const Rep& r : reps) {
    bit_identical = bit_identical && r.cold_fp == r.warm_fp && r.cold_fp == reps.front().cold_fp;
    warm_all_cached = warm_all_cached && r.warm.partitions_scanned == 0;
    if (r.cold.total_seconds < best->cold.total_seconds) best = &r;
  }
  const double speedup =
      best->warm.total_seconds > 0 ? best->cold.total_seconds / best->warm.total_seconds : 0.0;
  std::printf("cold/warm speedup (best rep): %.1fx, bit-identical: %s\n", speedup,
              bit_identical ? "yes" : "NO");

  std::FILE* f = std::fopen(args.out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", args.out.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  const unsigned host_cpus = std::thread::hardware_concurrency();
  const unsigned eff_threads = args.threads != 0 ? args.threads : std::max(1u, host_cpus);
  std::fprintf(f,
               "  \"config\": {\"system\": \"Cori\", \"jobs\": %llu, \"seed\": %llu, "
               "\"batches\": %llu, \"logs_scale\": %g, \"files_scale\": %g, "
               "\"compress\": %s, \"include_huge\": true, \"host_cpus\": %u, "
               "\"threads\": %u, \"oversubscribed\": %s, \"mlp_depth\": %u},\n",
               static_cast<unsigned long long>(args.jobs),
               static_cast<unsigned long long>(args.seed),
               static_cast<unsigned long long>(args.batches), args.logs_scale, args.files_scale,
               args.compress ? "true" : "false", host_cpus, eff_threads,
               eff_threads > host_cpus ? "true" : "false", args.mlp_depth);
  std::fprintf(f, "  \"reps\": [\n");
  for (std::size_t i = 0; i < reps.size(); ++i) {
    const Rep& r = reps[i];
    std::fprintf(
        f,
        "    {\"ingest_s\": %.4f, \"ingest_logs_per_s\": %.2f, \"partitions\": %llu,\n"
        "     \"ingest_groups\": %llu,\n"
        "     \"ingest_phase_s\": {\"serialize\": %.4f, \"compress\": %.4f, "
        "\"snapshot\": %.4f, \"publish\": %.4f},\n"
        "     \"segment_bytes\": %llu, \"cold_query_s\": %.4f, \"cold_scan_s\": %.4f,\n"
        "     \"cold_scan_mb_s\": %.2f,\n"
        "     \"cold_phase_s\": {\"parse\": %.4f, \"summarize\": %.4f, \"accumulate\": %.4f},\n"
        "     \"cold_merge_s\": %.4f, \"warm_query_s\": %.4f, \"warm_snapshot_hits\": %llu,\n"
        "     \"logs\": %llu}%s\n",
        r.ingest.seconds, r.ingest.logs_per_second(),
        static_cast<unsigned long long>(r.ingest.partitions),
        static_cast<unsigned long long>(r.ingest.groups),
        static_cast<double>(r.ingest.serialize_ns) * 1e-9,
        static_cast<double>(r.ingest.compress_ns) * 1e-9,
        static_cast<double>(r.ingest.snapshot_ns) * 1e-9,
        static_cast<double>(r.ingest.publish_ns) * 1e-9,
        static_cast<unsigned long long>(r.ingest.bytes), r.cold.total_seconds,
        r.cold.scan_seconds,
        r.cold.scan_seconds > 0 ? static_cast<double>(r.ingest.bytes) / r.cold.scan_seconds / 1e6
                                : 0.0,
        r.cold.parse_seconds, r.cold.summarize_seconds,
        r.cold.accumulate_seconds, r.cold.merge_seconds, r.warm.total_seconds,
        static_cast<unsigned long long>(r.warm.snapshot_hits),
        static_cast<unsigned long long>(r.ingest.logs), i + 1 < reps.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  bool sweep_bits_ok = true;
  if (!sweep.empty()) {
    std::fprintf(f, "  \"partition_sweep\": [\n");
    for (std::size_t i = 0; i < sweep.size(); ++i) {
      const SweepPoint& pt = sweep[i];
      sweep_bits_ok = sweep_bits_ok && pt.fingerprints_match;
      std::fprintf(f,
                   "    {\"partitions\": %u, \"linear_warm_query_s\": %.6f, "
                   "\"linear_merge_s\": %.6f, \"memo_warm_query_s\": %.7f, "
                   "\"memo_merged_hits\": %llu, \"speedup\": %.1f, "
                   "\"fingerprints_match\": %s}%s\n",
                   pt.partitions, pt.linear_warm_s, pt.linear_merge_s, pt.memo_warm_s,
                   static_cast<unsigned long long>(pt.memo_hits), pt.speedup(),
                   pt.fingerprints_match ? "true" : "false",
                   i + 1 < sweep.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
  }
  if (args.live_jobs > 0) {
    std::fprintf(
        f,
        "  \"live\": {\n"
        "    \"jobs\": %llu, \"logs\": %llu, \"wall_s\": %.4f, \"logs_per_s\": %.2f,\n"
        "    \"appends\": %llu, \"windows_published\": %llu, \"newest_window\": %llu,\n"
        "    \"window_gets\": %llu, \"background_merges\": %llu, \"compactor_errors\": %llu,\n"
        "    \"partitions_live\": %llu, \"partitions_drained\": %llu,\n"
        "    \"boundary_cuts\": %llu, \"cap_cuts\": %llu, \"late_logs\": %llu,\n"
        "    \"generations_verified\": %llu, \"divergent\": %llu, \"gc_pending_after\": %llu,\n"
        "    \"bit_identical\": %s\n"
        "  },\n",
        static_cast<unsigned long long>(args.live_jobs),
        static_cast<unsigned long long>(live.logs_streamed), live.wall_seconds,
        live.logs_per_second(), static_cast<unsigned long long>(live.appends),
        static_cast<unsigned long long>(live.windows_published),
        static_cast<unsigned long long>(live.newest_window),
        static_cast<unsigned long long>(live.window_gets),
        static_cast<unsigned long long>(live.compactions),
        static_cast<unsigned long long>(live.compactor_errors),
        static_cast<unsigned long long>(live.final_partitions),
        static_cast<unsigned long long>(live_partitions_drained),
        static_cast<unsigned long long>(live.stream.boundary_cuts),
        static_cast<unsigned long long>(live.stream.cap_cuts),
        static_cast<unsigned long long>(live.stream.late_logs),
        static_cast<unsigned long long>(live.verified_generations),
        static_cast<unsigned long long>(live.divergent),
        static_cast<unsigned long long>(live.gc_pending_after),
        live.divergent == 0 ? "true" : "false");
  }
  if (!scale.lanes.empty()) {
    std::fprintf(f,
                 "  \"scale\": {\n"
                 "    \"jobs\": %llu, \"logs\": %llu, \"segment_bytes\": %llu, "
                 "\"batches\": %llu,\n"
                 "    \"lanes\": [\n",
                 static_cast<unsigned long long>(scale.jobs),
                 static_cast<unsigned long long>(scale.logs),
                 static_cast<unsigned long long>(scale.bytes),
                 static_cast<unsigned long long>(scale.batches));
    for (std::size_t i = 0; i < scale.lanes.size(); ++i) {
      const ScaleLane& lane = scale.lanes[i];
      std::fprintf(
          f,
          "      {\"ingest_threads\": %u, \"oversubscribed\": %s, \"ingest_s\": %.4f,\n"
          "       \"ingest_logs_per_s\": %.2f, \"groups\": %llu,\n"
          "       \"phase_s\": {\"serialize\": %.4f, \"compress\": %.4f, "
          "\"snapshot\": %.4f, \"publish\": %.4f}}%s\n",
          lane.ingest_threads, lane.ingest_threads > host_cpus ? "true" : "false",
          lane.ingest.seconds, lane.ingest.logs_per_second(),
          static_cast<unsigned long long>(lane.ingest.groups),
          static_cast<double>(lane.ingest.serialize_ns) * 1e-9,
          static_cast<double>(lane.ingest.compress_ns) * 1e-9,
          static_cast<double>(lane.ingest.snapshot_ns) * 1e-9,
          static_cast<double>(lane.ingest.publish_ns) * 1e-9,
          i + 1 < scale.lanes.size() ? "," : "");
    }
    std::fprintf(f,
                 "    ],\n"
                 "    \"speedup_parallel_vs_serial\": %.3f,\n"
                 "    \"bytes_identical_across_threads\": %s,\n"
                 "    \"cold_query_s\": %.4f, \"warm_query_s\": %.4f,\n"
                 "    \"cold_warm_bit_identical\": %s\n"
                 "  },\n",
                 scale.speedup, scale.bytes_identical ? "true" : "false", scale.cold_s,
                 scale.warm_s, scale.cold_fp == scale.warm_fp ? "true" : "false");
  }
  std::fprintf(f, "  \"warm_speedup_best\": %.3f,\n", speedup);
  std::fprintf(f, "  \"warm_all_cached\": %s,\n", warm_all_cached ? "true" : "false");
  std::fprintf(f, "  \"cold_warm_bit_identical\": %s\n", bit_identical ? "true" : "false");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", args.out.c_str());
  return bit_identical && warm_all_cached && sweep_bits_ok && scale_ok && live_ok ? 0 : 1;
}
