// Table 6 — files using the POSIX / MPI-IO / STDIO interfaces per layer.
// A file reached through MPI-IO also counts under POSIX (MPI-IO initiates
// POSIX), matching how real Darshan logs double-count Table 6.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace mlio;
  const bench::Args args = bench::Args::parse(argc, argv, 2000);
  bench::header("Table 6", "Files per I/O interface per layer (millions at full scale)");

  struct PaperRow {
    const char* layer;
    double posix_m, mpiio_m, stdio_m;
  };
  const PaperRow paper_summit[] = {{"SCNL", 52, 6e-6, 227}, {"PFS", 743, 157, 404}};
  const PaperRow paper_cori[] = {{"CBB", 13, 13, 0.65}, {"PFS", 313, 207, 89}};

  util::Table t({"system", "layer", "iface", "paper (M)", "est. (M)", "deviation"});
  for (const auto* prof : {&wl::SystemProfile::summit_2020(), &wl::SystemProfile::cori_2019()}) {
    const bench::SystemRun run = bench::run_system(*prof, args, /*include_huge=*/false);
    const PaperRow* rows = prof->system == "Summit" ? paper_summit : paper_cori;
    const double cs = run.gen.count_scale() / 1e6;  // to millions
    for (int i = 0; i < 2; ++i) {
      const auto layer = i == 0 ? core::Layer::kInSystem : core::Layer::kPfs;
      const auto& c = run.result.bulk.interfaces().counts(layer);
      const double est[3] = {static_cast<double>(c.posix) * cs,
                             static_cast<double>(c.mpiio) * cs,
                             static_cast<double>(c.stdio) * cs};
      const double paper[3] = {rows[i].posix_m, rows[i].mpiio_m, rows[i].stdio_m};
      const char* names[3] = {"POSIX", "MPI-IO", "STDIO"};
      for (int k = 0; k < 3; ++k) {
        t.add_row({prof->system, rows[i].layer, names[k], bench::fmt(paper[k]),
                   bench::fmt(est[k]), bench::deviation(paper[k], est[k])});
      }
      t.add_separator();
    }
  }
  bench::emit(args, t);
  std::printf("\nHeadlines (paper): POSIX manages ~50%% of files on both systems; STDIO is "
              "4.37x POSIX on SCNL and ~40%% of Summit's files overall; MPI-IO is rare on "
              "Summit.\n");
  return 0;
}
