// Fig. 5 — Fig. 4 restricted to jobs with more than 1,024 processes.
//
// Paper observations: the PFS trend matches the all-jobs trend (Fig. 4) on
// both systems, while the in-system layer sees noticeably more large
// requests from large jobs.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace mlio;
  const bench::Args args = bench::Args::parse(argc, argv, 2500);
  bench::header("Figure 5", "Request-size CDFs for jobs with > 1,024 processes");

  const auto& bins = util::BinSpec::darshan_request_bins();
  std::vector<std::string> headers = {"system", "layer", "dir"};
  for (const auto& l : bins.labels()) headers.push_back(l);
  util::Table t(headers);
  util::Table checks({"system", "shape check", "all jobs", "large jobs"});

  for (const auto* prof : {&wl::SystemProfile::summit_2020(), &wl::SystemProfile::cori_2019()}) {
    const bench::SystemRun run = bench::run_system(*prof, args, /*include_huge=*/false);
    for (int li = 0; li < 2; ++li) {
      const auto layer = li == 0 ? core::Layer::kInSystem : core::Layer::kPfs;
      const auto& st = run.result.bulk.access().layer(layer);
      const char* lname = li == 0 ? (prof->system == "Summit" ? "SCNL" : "CBB") : "PFS";
      for (const bool read : {true, false}) {
        const auto& large = read ? st.read_requests_large : st.write_requests_large;
        const auto cdf = large.cdf_percent();
        std::vector<std::string> row = {prof->system, lname, read ? "read" : "write"};
        for (const double v : cdf) row.push_back(bench::fmt(v, 1));
        t.add_row(std::move(row));
      }

      // Share of calls >= 1 MB, all jobs vs large jobs.
      auto big_share = [&](const util::Histogram& h) {
        double big = 0;
        const auto share = h.share_percent();
        for (std::size_t b = 5; b < share.size(); ++b) big += share[b];
        return big;
      };
      checks.add_row({prof->system, std::string(lname) + " read calls >= 1MB",
                      bench::fmt(big_share(st.read_requests), 1) + "%",
                      bench::fmt(big_share(st.read_requests_large), 1) + "%"});
    }
    t.add_separator();
    checks.add_separator();
  }
  bench::emit(args, t);
  std::printf("\nShape check (paper: large jobs push bigger requests to the in-system layer, "
              "while the PFS trend matches Fig. 4):\n");
  bench::emit(args, checks);
  return 0;
}
