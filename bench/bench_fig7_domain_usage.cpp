// Fig. 7 — usage of the in-system layers across science domains.
//
// Paper observations: 9 domains used SCNL (>3K jobs; CS + Physics = 60% of
// those jobs; biology & materials read-only; chemistry write-only); 12
// domains used CBB, with physics moving 71.95% of the CBB bytes.
#include <algorithm>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace mlio;
  const bench::Args args = bench::Args::parse(argc, argv, 2500);
  bench::header("Figure 7", "In-system layer usage by science domain (read/write TB)");

  for (const auto* prof : {&wl::SystemProfile::summit_2020(), &wl::SystemProfile::cori_2019()}) {
    const bench::SystemRun run = bench::run_system(*prof, args, /*include_huge=*/false);
    const auto& domains = run.result.bulk.layers().domains();

    double total_bytes = 0;
    for (const auto& [name, d] : domains) {
      total_bytes += d.insys_bytes_read + d.insys_bytes_written;
    }

    util::Table t({"domain", "read TB (full-scale est.)", "write TB (est.)",
                   "share of layer transfer", "logs"});
    // Sort by total transfer, descending, like the figure.
    std::vector<std::pair<std::string, core::LayerUsage::DomainUsage>> sorted(domains.begin(),
                                                                              domains.end());
    std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
      return a.second.insys_bytes_read + a.second.insys_bytes_written >
             b.second.insys_bytes_read + b.second.insys_bytes_written;
    });
    std::string physics_share = "n/a";
    for (const auto& [name, d] : sorted) {
      const double share =
          100.0 * (d.insys_bytes_read + d.insys_bytes_written) / std::max(1.0, total_bytes);
      if (name == "Physics") physics_share = bench::fmt(share, 2) + "%";
      t.add_row({name, bench::fmt(util::to_tb(d.insys_bytes_read * run.gen.count_scale())),
                 bench::fmt(util::to_tb(d.insys_bytes_written * run.gen.count_scale())),
                 bench::fmt(share, 2) + "%", std::to_string(d.insys_logs)});
    }
    std::printf("\n-- %s: %zu domains used the in-system layer; %llu distinct jobs --\n",
                prof->system.c_str(), domains.size(),
                static_cast<unsigned long long>(run.result.bulk.layers().insys_jobs()));
    bench::emit(args, t);
    if (prof->system == "Cori") {
      std::printf("Physics share of CBB transfer: %s (paper: 71.95%%)\n",
                  physics_share.c_str());
    } else {
      std::printf("Paper: CS+Physics = 60%% of SCNL jobs; biology/materials read-only; "
                  "chemistry write-only on SCNL.\n");
    }
  }
  return 0;
}
