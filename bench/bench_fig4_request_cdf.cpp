// Fig. 4 — CDFs of per-process request sizes over the 10 Darshan bins.
//
// Paper anchors (§3.2.1): on Summit's PFS the 0-100 B and 1-10 KB bins each
// cover ~45% of read calls; on SCNL the 10-100 KB bin covers 83% of reads
// and 60% of writes.  (STDIO calls are absent: Darshan collects no STDIO
// request histogram — the gap Rec. 4 calls out.)
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace mlio;
  const bench::Args args = bench::Args::parse(argc, argv, 2000);
  bench::header("Figure 4", "CDF of request sizes per process (percent of calls <= bin)");

  const auto& bins = util::BinSpec::darshan_request_bins();
  std::vector<std::string> headers = {"system", "layer", "dir"};
  for (const auto& l : bins.labels()) headers.push_back(l);
  util::Table t(headers);
  util::Table anchors({"system", "check", "paper", "measured"});

  for (const auto* prof : {&wl::SystemProfile::summit_2020(), &wl::SystemProfile::cori_2019()}) {
    const bench::SystemRun run = bench::run_system(*prof, args, /*include_huge=*/false);
    for (int li = 0; li < 2; ++li) {
      const auto layer = li == 0 ? core::Layer::kInSystem : core::Layer::kPfs;
      const auto& st = run.result.bulk.access().layer(layer);
      const char* lname = li == 0 ? (prof->system == "Summit" ? "SCNL" : "CBB") : "PFS";
      for (const bool read : {true, false}) {
        const auto& h = read ? st.read_requests : st.write_requests;
        const auto cdf = h.cdf_percent();
        std::vector<std::string> row = {prof->system, lname, read ? "read" : "write"};
        for (const double v : cdf) row.push_back(bench::fmt(v, 1));
        t.add_row(std::move(row));

        if (prof->system == "Summit") {
          const auto share = h.share_percent();
          if (li == 1 && read) {
            anchors.add_row({"Summit", "PFS read calls in 0-100B bin", "~45%",
                             bench::fmt(share[0], 1) + "%"});
            anchors.add_row({"Summit", "PFS read calls in 1K-10K bin", "~45%",
                             bench::fmt(share[2], 1) + "%"});
          }
          if (li == 0) {
            anchors.add_row({"Summit",
                             std::string("SCNL ") + (read ? "read" : "write") +
                                 " calls in 10K-100K bin",
                             read ? "83%" : "60%", bench::fmt(share[3], 1) + "%"});
          }
        }
      }
    }
    t.add_separator();
  }
  bench::emit(args, t);
  std::printf("\nAnchor check (per-bin call shares):\n");
  bench::emit(args, anchors);
  return 0;
}
