// Archive-service latency/throughput driver: seeds an archive, then runs
// the closed-loop client pool (src/service/driver.hpp) at each requested
// client count and writes per-count p50/p99 latency, throughput, and
// shared-cache hit rates to BENCH_service.json so the serving trajectory is
// tracked across PRs.
//
// Every configuration runs TWICE — once with the generation-delta engine
// (merged-result memoization + incremental prefix merge, DESIGN.md §12) and
// once with it disabled (every get resolves and folds all P shards, the
// honest linear-in-P lane).  A dedicated warm-get phase measures repeated
// gets against an UNCHANGED generation on the freshly seeded archive (all
// --batches partitions live), which is the headline: memoized warm p50 must
// not grow with the partition count.
//
// Every measured get() is verified after the run against a serial replay of
// its pinned generation (the MVCC oracle); the bench exits nonzero if any
// concurrent answer diverged — a wrong-bits serving path must never look
// like a fast one.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "archive/ingest.hpp"
#include "service/driver.hpp"

namespace {

using namespace mlio;

struct Args {
  std::uint64_t jobs = 240;           ///< seed-archive bulk jobs
  std::uint64_t seed = 42;
  std::uint64_t batches = 36;         ///< seed-archive partitions
  std::vector<unsigned> clients = {1, 2, 4};
  std::uint64_t requests = 48;        ///< measured requests per client
  std::uint64_t warmup = 6;           ///< unrecorded gets per client
  std::uint64_t cache_mb = 256;
  std::uint64_t merged_cache_mb = 64; ///< memoized lane budget
  unsigned merge_threads = 0;         ///< full-merge pool (0 = serial)
  std::uint64_t warm_gets = 32;       ///< timed gets in the warm-get phase
  unsigned weight_get = 90;
  unsigned weight_ingest = 8;
  unsigned weight_compact = 2;
  std::uint64_t logs_per_ingest = 4;
  std::uint64_t compact_max_logs = 48;
  std::string dir;
  std::string out = "BENCH_service.json";
};

std::vector<unsigned> parse_clients(const char* s) {
  std::vector<unsigned> out;
  for (const char* p = s; *p != '\0';) {
    out.push_back(static_cast<unsigned>(std::strtoul(p, const_cast<char**>(&p), 10)));
    if (*p == ',') ++p;
  }
  if (out.empty()) {
    std::fprintf(stderr, "bad --clients list: %s\n", s);
    std::exit(2);
  }
  return out;
}

Args parse(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--jobs")) a.jobs = std::strtoull(next("--jobs"), nullptr, 10);
    else if (!std::strcmp(argv[i], "--seed")) a.seed = std::strtoull(next("--seed"), nullptr, 10);
    else if (!std::strcmp(argv[i], "--batches")) a.batches = std::strtoull(next("--batches"), nullptr, 10);
    else if (!std::strcmp(argv[i], "--clients")) a.clients = parse_clients(next("--clients"));
    else if (!std::strcmp(argv[i], "--requests")) a.requests = std::strtoull(next("--requests"), nullptr, 10);
    else if (!std::strcmp(argv[i], "--warmup")) a.warmup = std::strtoull(next("--warmup"), nullptr, 10);
    else if (!std::strcmp(argv[i], "--cache-mb")) a.cache_mb = std::strtoull(next("--cache-mb"), nullptr, 10);
    else if (!std::strcmp(argv[i], "--merged-cache-mb")) a.merged_cache_mb = std::strtoull(next("--merged-cache-mb"), nullptr, 10);
    else if (!std::strcmp(argv[i], "--merge-threads")) a.merge_threads = static_cast<unsigned>(std::strtoul(next("--merge-threads"), nullptr, 10));
    else if (!std::strcmp(argv[i], "--warm-gets")) a.warm_gets = std::strtoull(next("--warm-gets"), nullptr, 10);
    else if (!std::strcmp(argv[i], "--mix")) {
      unsigned g = 0, in = 0, co = 0;
      if (std::sscanf(next("--mix"), "%u:%u:%u", &g, &in, &co) != 3 || g + in + co == 0) {
        std::fprintf(stderr, "bad --mix (want GET:INGEST:COMPACT weights)\n");
        std::exit(2);
      }
      a.weight_get = g; a.weight_ingest = in; a.weight_compact = co;
    }
    else if (!std::strcmp(argv[i], "--logs-per-ingest")) a.logs_per_ingest = std::strtoull(next("--logs-per-ingest"), nullptr, 10);
    else if (!std::strcmp(argv[i], "--compact-max-logs")) a.compact_max_logs = std::strtoull(next("--compact-max-logs"), nullptr, 10);
    else if (!std::strcmp(argv[i], "--dir")) a.dir = next("--dir");
    else if (!std::strcmp(argv[i], "--out")) a.out = next("--out");
    else if (!std::strcmp(argv[i], "--help")) {
      std::printf("usage: %s [--jobs N] [--seed S] [--batches B] [--clients 1,2,4]\n"
                  "          [--requests R] [--warmup W] [--cache-mb M] [--merged-cache-mb M]\n"
                  "          [--merge-threads T] [--warm-gets G] [--mix G:I:C]\n"
                  "          [--logs-per-ingest L] [--compact-max-logs K] [--dir DIR] [--out FILE]\n",
                  argv[0]);
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown flag %s (try --help)\n", argv[i]);
      std::exit(2);
    }
  }
  return a;
}

struct Row {
  unsigned clients = 0;
  bool merged = false;  ///< generation-delta engine on?
  service::WorkloadReport report;
};

/// One lane's warm-get measurement: repeated single-threaded gets against
/// the unchanged seeded generation (one unrecorded priming get first).
struct WarmGet {
  util::LatencyHistogram latency;
  std::uint64_t merged_hits = 0;
  std::uint64_t fingerprint = 0;
};

double us(double ns) { return ns * 1e-3; }

WarmGet measure_warm_gets(service::ArchiveService& svc, std::uint64_t n) {
  using SteadyClock = std::chrono::steady_clock;
  WarmGet w;
  w.fingerprint = svc.get().fingerprint;  // priming: resolves + memoizes
  for (std::uint64_t i = 0; i < n; ++i) {
    const auto t0 = SteadyClock::now();
    const auto r = svc.get();
    w.latency.record(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(SteadyClock::now() - t0).count()));
    w.merged_hits += r.stats.query.merged_hits;
    if (r.fingerprint != w.fingerprint) w.fingerprint = ~0ull;  // poison on divergence
  }
  return w;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse(argc, argv);

  wl::GeneratorConfig cfg;
  cfg.seed = args.seed;
  cfg.n_jobs = args.jobs;
  cfg.logs_per_job_scale = 0.25;
  cfg.files_per_log_scale = 0.25;
  const wl::WorkloadGenerator gen(wl::SystemProfile::cori_2019(), cfg);

  const std::vector<service::ServiceFrame> pool =
      service::make_frame_pool(std::max<std::uint64_t>(args.logs_per_ingest * 4, 16),
                               args.seed + 1);

  const std::filesystem::path base =
      args.dir.empty() ? std::filesystem::temp_directory_path() / "mlio_bench_service"
                       : std::filesystem::path(args.dir);

  const auto seed_dir = [&](const std::filesystem::path& dir) {
    std::filesystem::remove_all(dir);
    archive::Archive ar = archive::Archive::create(dir);
    archive::IngestOptions iopts;
    iopts.batches = args.batches;
    iopts.include_huge = false;
    archive::ingest_generated(ar, gen, iopts);
  };
  const auto service_options = [&](bool merged) {
    service::ArchiveService::Options sopts;
    sopts.cache.capacity_bytes = args.cache_mb << 20;
    sopts.merged.capacity_bytes = merged ? args.merged_cache_mb << 20 : 0;
    sopts.merge_threads = args.merge_threads;
    return sopts;
  };

  std::vector<Row> rows;
  WarmGet warm[2];  // [0] generation-delta engine on, [1] off
  bool all_ok = true;
  for (const bool merged : {true, false}) {
    // Warm-get phase first, on a pristine seed archive: all --batches
    // partitions live, generation never moves, single caller.  The memoized
    // lane answers from the whole-answer memo; the linear lane re-resolves
    // and re-folds every shard per get.
    {
      const std::filesystem::path dir = base / (merged ? "warm_memo" : "warm_linear");
      seed_dir(dir);
      service::ArchiveService svc(dir, service_options(merged));
      warm[merged ? 0 : 1] = measure_warm_gets(svc, args.warm_gets);
      std::filesystem::remove_all(dir);
    }

    for (unsigned clients : args.clients) {
      // A fresh seed archive per client count, so every run starts from the
      // same partition layout regardless of what earlier runs ingested.
      const std::filesystem::path dir =
          base / ((merged ? "m_c" : "l_c") + std::to_string(clients));
      seed_dir(dir);
      service::ArchiveService svc(dir, service_options(merged));

      service::WorkloadConfig wcfg;
      wcfg.clients = clients;
      wcfg.requests_per_client = args.requests;
      wcfg.warmup_per_client = args.warmup;
      wcfg.seed = args.seed;
      wcfg.weight_get = args.weight_get;
      wcfg.weight_ingest = args.weight_ingest;
      wcfg.weight_compact = args.weight_compact;
      wcfg.logs_per_ingest = args.logs_per_ingest;
      wcfg.compact_max_logs = args.compact_max_logs;

      Row row;
      row.clients = clients;
      row.merged = merged;
      row.report = service::run_closed_loop(svc, wcfg, pool);
      all_ok = all_ok && row.report.ok();

      std::printf(
          "%s clients %2u: %7.1f req/s  get p50 %8.1f us  p99 %8.1f us  "
          "merged hits %llu  gens %llu  divergent %llu\n",
          merged ? "memo  " : "linear", clients, row.report.throughput_rps(),
          us(row.report.get_latency.p50_ns()), us(row.report.get_latency.p99_ns()),
          static_cast<unsigned long long>(row.report.stats.query.merged_hits),
          static_cast<unsigned long long>(row.report.generations_observed),
          static_cast<unsigned long long>(row.report.divergent));

      rows.push_back(std::move(row));
      std::filesystem::remove_all(dir);
    }
  }
  if (args.dir.empty()) std::filesystem::remove_all(base);

  // Warm-get headline: both lanes answered the same bits; the memoized one
  // must not pay the per-shard fold.
  all_ok = all_ok && warm[0].fingerprint == warm[1].fingerprint;
  const double warm_speedup =
      warm[0].latency.p50_ns() > 0 ? warm[1].latency.p50_ns() / warm[0].latency.p50_ns() : 0.0;
  std::printf(
      "warm get @ %llu partitions: memoized p50 %.1f us vs linear p50 %.1f us (%.1fx), "
      "%llu/%llu merged hits\n",
      static_cast<unsigned long long>(args.batches), us(warm[0].latency.p50_ns()),
      us(warm[1].latency.p50_ns()), warm_speedup,
      static_cast<unsigned long long>(warm[0].merged_hits),
      static_cast<unsigned long long>(args.warm_gets));

  const auto lane_scaling = [&](bool merged) {
    double base_rps = 0.0;
    double peak_rps = 0.0;
    for (const Row& r : rows) {
      if (r.merged != merged) continue;
      if (base_rps == 0.0) base_rps = r.report.throughput_rps();
      peak_rps = std::max(peak_rps, r.report.throughput_rps());
    }
    return base_rps > 0 ? peak_rps / base_rps : 0.0;
  };
  const double scaling = lane_scaling(true);
  std::printf("throughput scaling (peak vs first client count, memoized lane): %.2fx, "
              "verified: %s\n",
              scaling, all_ok ? "yes" : "DIVERGED");

  std::FILE* f = std::fopen(args.out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", args.out.c_str());
    return 1;
  }
  const unsigned host_cpus = std::thread::hardware_concurrency();
  std::fprintf(f, "{\n");
  std::fprintf(f,
               "  \"config\": {\"system\": \"Cori\", \"jobs\": %llu, \"seed\": %llu, "
               "\"batches\": %llu, \"requests_per_client\": %llu, \"warmup_per_client\": %llu, "
               "\"cache_mb\": %llu, \"merged_cache_mb\": %llu, \"merge_threads\": %u, "
               "\"warm_gets\": %llu, \"mix\": \"%u:%u:%u\", \"logs_per_ingest\": %llu, "
               "\"compact_max_logs\": %llu, \"host_cpus\": %u},\n",
               static_cast<unsigned long long>(args.jobs),
               static_cast<unsigned long long>(args.seed),
               static_cast<unsigned long long>(args.batches),
               static_cast<unsigned long long>(args.requests),
               static_cast<unsigned long long>(args.warmup),
               static_cast<unsigned long long>(args.cache_mb),
               static_cast<unsigned long long>(args.merged_cache_mb), args.merge_threads,
               static_cast<unsigned long long>(args.warm_gets), args.weight_get,
               args.weight_ingest, args.weight_compact,
               static_cast<unsigned long long>(args.logs_per_ingest),
               static_cast<unsigned long long>(args.compact_max_logs), host_cpus);
  std::fprintf(f,
               "  \"warm_get\": {\"partitions\": %llu, \"memoized_p50_us\": %.1f, "
               "\"memoized_p99_us\": %.1f, \"linear_p50_us\": %.1f, \"linear_p99_us\": %.1f, "
               "\"p50_speedup\": %.2f, \"merged_hits\": %llu, \"gets\": %llu, "
               "\"fingerprints_match\": %s},\n",
               static_cast<unsigned long long>(args.batches), us(warm[0].latency.p50_ns()),
               us(warm[0].latency.p99_ns()), us(warm[1].latency.p50_ns()),
               us(warm[1].latency.p99_ns()), warm_speedup,
               static_cast<unsigned long long>(warm[0].merged_hits),
               static_cast<unsigned long long>(args.warm_gets),
               warm[0].fingerprint == warm[1].fingerprint ? "true" : "false");
  std::fprintf(f, "  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const service::WorkloadReport& r = rows[i].report;
    std::fprintf(
        f,
        "    {\"clients\": %u, \"merged\": %s, \"throughput_rps\": %.2f, \"wall_s\": %.4f,\n"
        "     \"requests\": %llu, \"gets\": %llu, \"ingests\": %llu, \"compacts\": %llu,\n"
        "     \"get_p50_us\": %.1f, \"get_p90_us\": %.1f, \"get_p99_us\": %.1f,\n"
        "     \"ingest_p50_us\": %.1f, \"ingest_p99_us\": %.1f,\n"
        "     \"compact_p50_us\": %.1f, \"compact_p99_us\": %.1f,\n"
        "     \"cache_hit_rate\": %.4f, \"cache_hits\": %llu, \"snapshot_hits\": %llu,\n"
        "     \"partitions_scanned\": %llu, \"queue_wait_ms\": %.3f, \"stale_retries\": %llu,\n"
        "     \"merged_hits\": %llu, \"prefix_merges\": %llu, \"full_merges\": %llu,\n"
        "     \"partitions_reused\": %llu, \"tree_merges\": %llu,\n"
        "     \"cache\": {\"lookups\": %llu, \"hits\": %llu, \"insertions\": %llu,\n"
        "       \"evictions\": %llu, \"rejected\": %llu, \"purged\": %llu,\n"
        "       \"entries\": %llu, \"bytes_used\": %llu},\n"
        "     \"generations\": %llu, \"verified\": %llu, \"divergent\": %llu}%s\n",
        rows[i].clients, rows[i].merged ? "true" : "false", r.throughput_rps(), r.wall_seconds,
        static_cast<unsigned long long>(r.requests), static_cast<unsigned long long>(r.gets),
        static_cast<unsigned long long>(r.ingests), static_cast<unsigned long long>(r.compacts),
        us(r.get_latency.p50_ns()), us(r.get_latency.p90_ns()), us(r.get_latency.p99_ns()),
        us(r.ingest_latency.p50_ns()), us(r.ingest_latency.p99_ns()),
        us(r.compact_latency.p50_ns()), us(r.compact_latency.p99_ns()),
        r.stats.query.cache_hit_rate(), static_cast<unsigned long long>(r.stats.query.cache_hits),
        static_cast<unsigned long long>(r.stats.query.snapshot_hits),
        static_cast<unsigned long long>(r.stats.query.partitions_scanned),
        static_cast<double>(r.stats.queue_wait_ns) * 1e-6,
        static_cast<unsigned long long>(r.stats.stale_retries),
        static_cast<unsigned long long>(r.stats.query.merged_hits),
        static_cast<unsigned long long>(r.stats.query.prefix_merges),
        static_cast<unsigned long long>(r.stats.query.full_merges),
        static_cast<unsigned long long>(r.stats.query.partitions_reused),
        static_cast<unsigned long long>(r.stats.query.tree_merges),
        static_cast<unsigned long long>(r.cache.lookups),
        static_cast<unsigned long long>(r.cache.hits),
        static_cast<unsigned long long>(r.cache.insertions),
        static_cast<unsigned long long>(r.cache.evictions),
        static_cast<unsigned long long>(r.cache.rejected),
        static_cast<unsigned long long>(r.cache.purged),
        static_cast<unsigned long long>(r.cache.entries),
        static_cast<unsigned long long>(r.cache.bytes_used),
        static_cast<unsigned long long>(r.generations_observed),
        static_cast<unsigned long long>(r.verified_generations),
        static_cast<unsigned long long>(r.divergent), i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"throughput_scaling\": %.3f,\n", scaling);
  std::fprintf(f, "  \"warm_get_p50_speedup\": %.2f,\n", warm_speedup);
  std::fprintf(f, "  \"fingerprints_match_serial_replay\": %s\n", all_ok ? "true" : "false");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", args.out.c_str());
  return all_ok ? 0 : 1;
}
