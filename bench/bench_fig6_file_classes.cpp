// Fig. 6 — read-only / read-write / write-only classification of files
// (POSIX + STDIO population) per layer.
//
// Paper anchors: 95.7% (Summit) and 90.1% (Cori) of PFS files are read-only
// or write-only — i.e., stageable between layers without consistency
// concerns, which is the premise of Recommendation 3.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace mlio;
  const bench::Args args = bench::Args::parse(argc, argv, 2000);
  bench::header("Figure 6", "File classification by I/O direction, per layer");

  util::Table t({"system", "layer", "read-only", "read-write", "write-only",
                 "RO+WO % (paper)", "RO+WO % (measured)"});
  for (const auto* prof : {&wl::SystemProfile::summit_2020(), &wl::SystemProfile::cori_2019()}) {
    const bench::SystemRun run = bench::run_system(*prof, args, /*include_huge=*/false);
    for (int li = 0; li < 2; ++li) {
      const auto layer = li == 0 ? core::Layer::kInSystem : core::Layer::kPfs;
      const auto& c = run.result.bulk.layers().classes(layer);
      const char* lname = li == 0 ? (prof->system == "Summit" ? "SCNL" : "CBB") : "PFS";
      const char* paper = li == 1 ? (prof->system == "Summit" ? "95.7" : "90.1") : "-";
      t.add_row({prof->system, lname, util::format_count(double(c.read_only)),
                 util::format_count(double(c.read_write)),
                 util::format_count(double(c.write_only)), paper,
                 bench::fmt(c.ro_or_wo_percent())});
    }
    t.add_separator();
  }
  bench::emit(args, t);
  std::printf("\nRecommendation 3 context: every RO or WO file on the PFS could be staged "
              "to the in-system layer without coherence traffic.\n");
  return 0;
}
