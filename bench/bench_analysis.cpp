// Analysis ingest hot-path driver: measures the parse→summarize→accumulate
// chain in isolation (single thread, frames pre-serialized) and writes the
// numbers to BENCH_analysis.json so the per-log analyze cost is tracked
// across PRs — the consumer-side twin of bench_executor.
//
//   seed    — the pre-overhaul read path: fresh std::string + hash-map node
//             per name (ReadOptions::seed_compat_parse), per-log Partial
//             hash map + fresh output vector in summarize
//             (AnalyzeScratch::seed_compat_summarize), O(mounts) prefix scan
//             per file.
//   scratch — the production path: names filled into the flat arena table,
//             sort-key run-scan summarize into recycled vectors, memoized
//             longest-prefix mount table.
//
// Both modes must produce bit-identical Analysis fingerprints (checked, and
// divergence fails the run — the same contract bench_executor enforces with
// frame digests).  Frames are uncompressed so zlib does not mask the paths
// under test.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <random>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "archive/scan.hpp"
#include "core/analysis.hpp"
#include "darshan/log_format.hpp"
#include "iosim/executor.hpp"
#include "workload/generator.hpp"
#include "workload/pipeline.hpp"

// ---------------------------------------------------------------------------
// Allocation counting: replace the global unaligned new/delete with a
// counting passthrough (same hook as bench_executor).  The aligned overloads
// stay at their defaults.
namespace {
std::atomic<std::uint64_t> g_allocs{0};
std::atomic<std::uint64_t> g_alloc_bytes{0};
}  // namespace

void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(n, std::memory_order_relaxed);
  void* p = std::malloc(n != 0 ? n : 1);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace mlio;
using SteadyClock = std::chrono::steady_clock;

struct BenchArgs {
  std::uint64_t jobs = 300;
  std::uint64_t seed = 42;
  double logs_scale = 0.25;
  double files_scale = 0.25;
  unsigned reps = 5;
  /// MLP sweep pool size in MiB (0 skips the sweep).  Must exceed the LLC
  /// by a wide margin or the "cold scattered segment" it emulates is
  /// actually cache-resident and the latency axis disappears.
  std::uint64_t mlp_mb = 192;
  std::string out = "BENCH_analysis.json";
};

BenchArgs parse(int argc, char** argv) {
  BenchArgs a;
  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--jobs")) a.jobs = std::strtoull(next("--jobs"), nullptr, 10);
    else if (!std::strcmp(argv[i], "--seed")) a.seed = std::strtoull(next("--seed"), nullptr, 10);
    else if (!std::strcmp(argv[i], "--logs-scale")) a.logs_scale = std::strtod(next("--logs-scale"), nullptr);
    else if (!std::strcmp(argv[i], "--files-scale")) a.files_scale = std::strtod(next("--files-scale"), nullptr);
    else if (!std::strcmp(argv[i], "--reps")) a.reps = static_cast<unsigned>(std::strtoul(next("--reps"), nullptr, 10));
    else if (!std::strcmp(argv[i], "--mlp-mb")) a.mlp_mb = std::strtoull(next("--mlp-mb"), nullptr, 10);
    else if (!std::strcmp(argv[i], "--out")) a.out = next("--out");
    else if (!std::strcmp(argv[i], "--help")) {
      std::printf("usage: %s [--jobs N] [--seed S] [--logs-scale X] [--files-scale X]\n"
                  "          [--reps R] [--mlp-mb M] [--out FILE]\n", argv[0]);
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown flag %s (try --help)\n", argv[i]);
      std::exit(2);
    }
  }
  return a;
}

/// One system's pre-serialized log population (uncompressed frames,
/// back-to-back in one buffer — the segment layout a cold archive scan sees).
struct Frames {
  std::vector<std::byte> bytes;
  std::vector<std::size_t> sizes;
};

Frames build_frames(const wl::SystemProfile& profile, const BenchArgs& a) {
  wl::GeneratorConfig cfg;
  cfg.seed = a.seed;
  cfg.n_jobs = a.jobs;
  cfg.logs_per_job_scale = a.logs_scale;
  cfg.files_per_log_scale = a.files_scale;
  const wl::WorkloadGenerator gen(profile, cfg);
  const sim::JobExecutor executor(wl::machine_for(profile));
  const darshan::WriteOptions wopts{false, 0};

  Frames frames;
  darshan::LogData log;
  darshan::LogIoBuffers io;
  gen.generate_bulk_range(0, a.jobs, [&](const sim::JobSpec& spec) {
    executor.execute_into(spec, log);
    const auto frame = darshan::write_log_bytes_into(log, io, wopts);
    frames.bytes.insert(frames.bytes.end(), frame.begin(), frame.end());
    frames.sizes.push_back(frame.size());
  });
  return frames;
}

/// One measured ingest-mode run over one system's frames.
struct ModeResult {
  std::string mode;
  double total_s = -1;       ///< best-rep wall time for the whole ingest loop
  double parse_s = 0;        ///< best-rep frame-decode seconds
  double summarize_s = 0;    ///< best-rep summarize seconds
  double accumulate_s = 0;   ///< best-rep accumulator-feed seconds
  std::uint64_t allocs = 0;       ///< heap allocations during the best rep
  std::uint64_t alloc_bytes = 0;  ///< bytes requested during the best rep
  std::uint64_t fingerprint = 0;  ///< Analysis fingerprint (identical across reps)
  std::uint64_t logs = 0;
  std::uint64_t files = 0;

  double logs_per_s() const {
    return total_s > 0 ? static_cast<double>(logs) / total_s : 0;
  }
  double files_per_s() const {
    return total_s > 0 ? static_cast<double>(files) / total_s : 0;
  }
};

/// One ingest mode's scratch state and best-so-far result.  Both lanes are
/// driven rep-by-rep in alternation so the two modes sample the same host
/// conditions (the same fair-interleave scheme bench_executor uses).
struct ModeLane {
  darshan::ReadOptions ropts;
  darshan::LogData log;
  darshan::LogIoBuffers io;
  core::AnalyzeScratch analyze;
  core::AnalyzePhases phases;
  ModeResult best;

  explicit ModeLane(bool seed_mode) {
    best.mode = seed_mode ? "seed" : "scratch";
    ropts.seed_compat_parse = seed_mode;
    analyze.seed_compat_summarize = seed_mode;
    analyze.phases = &phases;
  }

  void run_rep(const Frames& frames, bool measured) {
    // The Analysis is constructed outside the measured window: its
    // histograms and reservoirs are setup cost, not per-log ingest cost,
    // and both modes would pay it identically.
    core::Analysis analysis;
    phases = {};
    double parse_s = 0;
    const std::uint64_t allocs0 = g_allocs.load(std::memory_order_relaxed);
    const std::uint64_t bytes0 = g_alloc_bytes.load(std::memory_order_relaxed);
    const auto t0 = SteadyClock::now();
    std::size_t offset = 0;
    for (const std::size_t size : frames.sizes) {
      const std::span<const std::byte> frame(frames.bytes.data() + offset, size);
      offset += size;
      const auto p0 = SteadyClock::now();
      darshan::read_log_bytes_into(frame, io, log, ropts);
      parse_s += std::chrono::duration<double>(SteadyClock::now() - p0).count();
      analysis.add(log, analyze);
    }
    const double total = std::chrono::duration<double>(SteadyClock::now() - t0).count();
    const std::uint64_t allocs = g_allocs.load(std::memory_order_relaxed) - allocs0;
    const std::uint64_t alloc_bytes = g_alloc_bytes.load(std::memory_order_relaxed) - bytes0;
    if (!measured) return;

    best.fingerprint = analysis.fingerprint();  // deterministic across reps
    best.logs = frames.sizes.size();
    best.files = analysis.summary().files();
    if (best.total_s < 0 || total < best.total_s) {
      best.total_s = total;
      best.parse_s = parse_s;
      best.summarize_s = phases.summarize_seconds;
      best.accumulate_s = phases.accumulate_seconds;
      best.allocs = allocs;
      best.alloc_bytes = alloc_bytes;
    }
  }
};

struct SystemResult {
  std::string system;
  std::uint64_t jobs = 0;
  double build_s = 0;  ///< generate+execute+serialize the frame set (shared)
  ModeResult seed;
  ModeResult scratch;
  bool fingerprints_identical = false;
  double speedup = 0;
};

SystemResult run_system(const wl::SystemProfile& profile, const BenchArgs& a) {
  SystemResult r;
  r.system = profile.system;
  r.jobs = a.jobs;
  std::fprintf(stderr, "[%s] building %llu-job frame set (seed %llu)...\n",
               profile.system.c_str(), static_cast<unsigned long long>(a.jobs),
               static_cast<unsigned long long>(a.seed));
  const auto t0 = SteadyClock::now();
  const Frames frames = build_frames(profile, a);
  r.build_s = std::chrono::duration<double>(SteadyClock::now() - t0).count();

  ModeLane seed(true);
  ModeLane scratch(false);
  // Warm-up pass: fault in the frames and size every scratch buffer.
  seed.run_rep(frames, false);
  scratch.run_rep(frames, false);
  for (unsigned rep = 0; rep < std::max(1u, a.reps); ++rep) {
    seed.run_rep(frames, true);
    scratch.run_rep(frames, true);
  }
  r.seed = seed.best;
  r.scratch = scratch.best;
  r.fingerprints_identical = r.seed.fingerprint == r.scratch.fingerprint;
  const double base = r.seed.logs_per_s();
  r.speedup = base > 0 ? r.scratch.logs_per_s() / base : 0;
  return r;
}

// ---------------------------------------------------------------------------
// MLP-depth sweep: drive archive::scan_frames over a large, shuffled pool of
// metadata-heavy frames at increasing pipeline depths.  Tiny frames scattered
// across a pool far beyond the LLC make the scan latency-bound — one
// dependent first-touch miss per frame with little compute to hide it — which
// is exactly the regime where keeping K frames in flight converts the scan
// from latency-limited to bandwidth-limited.  The record-heavy frame sets
// above never show this (their per-frame compute dwarfs a DRAM round trip),
// so the sweep owns its own population.

struct MlpPoint {
  unsigned depth = 1;
  double scan_s = 0;       ///< best-rep wall time for one full pool scan
  double mb_s = 0;
  std::uint64_t fingerprint = 0;
};

struct MlpSweepResult {
  std::uint64_t segment_bytes = 0;
  std::uint64_t frames = 0;
  std::uint64_t base_logs = 0;
  double build_s = 0;
  std::vector<MlpPoint> points;
  bool fingerprints_identical = true;
  unsigned knee_depth = 1;       ///< depth of the highest measured MB/s
  bool monotone_to_knee = true;  ///< MB/s non-decreasing from K=1 to the knee
};

MlpSweepResult run_mlp_sweep(const BenchArgs& a) {
  MlpSweepResult r;
  const auto t0 = SteadyClock::now();

  // Metadata-heavy population: a files-per-log scale near zero yields one-
  // or two-file logs whose frames are a couple of KB — the small-frame end
  // of the production spectrum (most Darshan logs are small; §2).
  wl::GeneratorConfig cfg;
  cfg.seed = a.seed;
  cfg.n_jobs = a.jobs;
  cfg.logs_per_job_scale = a.logs_scale;
  cfg.files_per_log_scale = 0.01;
  const wl::WorkloadGenerator gen(wl::SystemProfile::cori_2019(), cfg);
  const sim::JobExecutor executor(wl::machine_for(wl::SystemProfile::cori_2019()));
  const darshan::WriteOptions wopts{false, 0};

  std::vector<std::byte> base;
  std::vector<archive::IndexEntry> base_entries;
  {
    darshan::LogData log;
    darshan::LogIoBuffers io;
    gen.generate_bulk_range(0, a.jobs, [&](const sim::JobSpec& spec) {
      executor.execute_into(spec, log);
      const auto frame = darshan::write_log_bytes_into(log, io, wopts);
      archive::IndexEntry e;
      e.offset = base.size();
      e.size = frame.size();
      e.job_id = log.job.job_id;
      base.insert(base.end(), frame.begin(), frame.end());
      base_entries.push_back(e);
    });
  }
  r.base_logs = base_entries.size();

  // Replicate the serialized population until the pool overflows the LLC,
  // then shuffle the scan order so consecutive frames share no locality —
  // the access pattern of a cold shard rebuild over a fragmented segment.
  std::vector<std::byte> segment;
  std::vector<archive::IndexEntry> entries;
  const std::uint64_t target = std::max<std::uint64_t>(a.mlp_mb, 16) << 20;
  while (segment.size() < target) {
    const std::uint64_t shift = segment.size();
    segment.insert(segment.end(), base.begin(), base.end());
    for (archive::IndexEntry e : base_entries) {
      e.offset += shift;
      entries.push_back(e);
    }
  }
  std::mt19937_64 rng(a.seed * 0x9e3779b97f4a7c15ull + 1);
  std::shuffle(entries.begin(), entries.end(), rng);
  r.segment_bytes = segment.size();
  r.frames = entries.size();
  r.build_s = std::chrono::duration<double>(SteadyClock::now() - t0).count();

  for (const unsigned depth : {1u, 2u, 4u, 8u, 16u}) {
    archive::ScanScratch scratch;
    archive::ScanOptions opts;
    opts.mlp_depth = depth;
    MlpPoint pt;
    pt.depth = depth;
    pt.scan_s = -1;
    const unsigned reps = std::max(1u, std::min(a.reps, 3u));
    for (unsigned rep = 0; rep <= reps; ++rep) {  // rep 0 warms the scratch
      core::Analysis analysis;
      core::AnalyzeScratch analyze;
      const auto s0 = SteadyClock::now();
      archive::scan_frames(segment, entries, 0,
                           [&](const darshan::LogData& log) { analysis.add(log, analyze); },
                           scratch, opts, "mlp sweep");
      const double scan = std::chrono::duration<double>(SteadyClock::now() - s0).count();
      if (rep == 0) continue;
      pt.fingerprint = analysis.fingerprint();
      if (pt.scan_s < 0 || scan < pt.scan_s) pt.scan_s = scan;
    }
    pt.mb_s = static_cast<double>(r.segment_bytes) / pt.scan_s / 1e6;
    r.points.push_back(pt);
    std::fprintf(stderr, "[mlp] depth %2u: %.4f s  %.0f MB/s\n", depth, pt.scan_s, pt.mb_s);
  }

  std::size_t knee = 0;
  for (std::size_t i = 1; i < r.points.size(); ++i) {
    r.fingerprints_identical =
        r.fingerprints_identical && r.points[i].fingerprint == r.points[0].fingerprint;
    if (r.points[i].mb_s > r.points[knee].mb_s) knee = i;
  }
  r.knee_depth = r.points[knee].depth;
  for (std::size_t i = 1; i <= knee; ++i) {
    // Non-decreasing up to the knee, with 1% slack for run-to-run noise.
    if (r.points[i].mb_s < r.points[i - 1].mb_s * 0.99) r.monotone_to_knee = false;
  }
  return r;
}

void print_mode(const ModeResult& m) {
  const double logs = m.logs > 0 ? static_cast<double>(m.logs) : 1;
  std::printf("%-9s %10.1f %12.1f %9.0f %9.0f %9.0f %10.1f\n", m.mode.c_str(), m.logs_per_s(),
              m.files_per_s(), 1e9 * m.parse_s / logs, 1e9 * m.summarize_s / logs,
              1e9 * m.accumulate_s / logs, static_cast<double>(m.allocs) / logs);
}

void write_mode_json(std::FILE* f, const ModeResult& m, bool last) {
  const double logs = m.logs > 0 ? static_cast<double>(m.logs) : 1;
  std::fprintf(
      f,
      "      {\"mode\": \"%s\", \"logs_per_s\": %.2f, \"files_per_s\": %.2f,\n"
      "       \"phase_ns\": {\"parse_per_log\": %.0f, \"summarize_per_log\": %.0f, "
      "\"accumulate_per_log\": %.0f},\n"
      "       \"total_s\": %.6f, \"parse_s\": %.6f, \"summarize_s\": %.6f, "
      "\"accumulate_s\": %.6f,\n"
      "       \"allocs_per_log\": %.2f, \"alloc_bytes_per_log\": %.0f,\n"
      "       \"logs\": %llu, \"files\": %llu, \"fingerprint\": %llu}%s\n",
      m.mode.c_str(), m.logs_per_s(), m.files_per_s(), 1e9 * m.parse_s / logs,
      1e9 * m.summarize_s / logs, 1e9 * m.accumulate_s / logs, m.total_s, m.parse_s,
      m.summarize_s, m.accumulate_s, static_cast<double>(m.allocs) / logs,
      static_cast<double>(m.alloc_bytes) / logs, static_cast<unsigned long long>(m.logs),
      static_cast<unsigned long long>(m.files), static_cast<unsigned long long>(m.fingerprint),
      last ? "" : ",");
}

void write_mlp_json(std::FILE* f, const MlpSweepResult& m) {
  std::fprintf(f,
               "  \"mlp_sweep\": {\n"
               "    \"config\": {\"system\": \"Cori\", \"segment_bytes\": %llu, "
               "\"frames\": %llu, \"base_logs\": %llu, \"shuffled\": true, "
               "\"compressed_frames\": false, \"build_s\": %.3f},\n",
               static_cast<unsigned long long>(m.segment_bytes),
               static_cast<unsigned long long>(m.frames),
               static_cast<unsigned long long>(m.base_logs), m.build_s);
  std::fprintf(f, "    \"points\": [\n");
  for (std::size_t i = 0; i < m.points.size(); ++i) {
    const MlpPoint& p = m.points[i];
    std::fprintf(f,
                 "      {\"mlp_depth\": %u, \"scan_s\": %.4f, \"mb_per_s\": %.1f, "
                 "\"fingerprint\": %llu}%s\n",
                 p.depth, p.scan_s, p.mb_s, static_cast<unsigned long long>(p.fingerprint),
                 i + 1 < m.points.size() ? "," : "");
  }
  std::fprintf(f, "    ],\n");
  std::fprintf(f, "    \"knee_depth\": %u,\n", m.knee_depth);
  std::fprintf(f, "    \"monotone_to_knee\": %s,\n", m.monotone_to_knee ? "true" : "false");
  std::fprintf(f, "    \"fingerprints_identical\": %s\n",
               m.fingerprints_identical ? "true" : "false");
  std::fprintf(f, "  },\n");
}

void write_json(const BenchArgs& a, const std::vector<SystemResult>& systems,
                const MlpSweepResult* mlp, double min_speedup, bool all_identical) {
  std::FILE* f = std::fopen(a.out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", a.out.c_str());
    std::exit(1);
  }
  const unsigned host_cpus = std::thread::hardware_concurrency();
  std::fprintf(f, "{\n");
  std::fprintf(f,
               "  \"config\": {\"jobs\": %llu, \"seed\": %llu, \"logs_scale\": %g, "
               "\"files_scale\": %g, \"reps\": %u, \"threads\": 1, \"host_cpus\": %u, "
               "\"compressed_frames\": false},\n",
               static_cast<unsigned long long>(a.jobs), static_cast<unsigned long long>(a.seed),
               a.logs_scale, a.files_scale, a.reps, host_cpus);
  std::fprintf(f, "  \"systems\": [\n");
  for (std::size_t i = 0; i < systems.size(); ++i) {
    const SystemResult& s = systems[i];
    std::fprintf(f, "    {\"system\": \"%s\", \"jobs\": %llu, \"build_s\": %.6f,\n",
                 s.system.c_str(), static_cast<unsigned long long>(s.jobs), s.build_s);
    std::fprintf(f, "     \"runs\": [\n");
    write_mode_json(f, s.seed, false);
    write_mode_json(f, s.scratch, true);
    std::fprintf(f, "     ],\n");
    std::fprintf(f,
                 "     \"speedup_scratch_vs_seed\": %.3f, \"fingerprints_identical\": %s}%s\n",
                 s.speedup, s.fingerprints_identical ? "true" : "false",
                 i + 1 < systems.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  if (mlp != nullptr) write_mlp_json(f, *mlp);
  std::fprintf(f, "  \"min_speedup\": %.3f,\n", min_speedup);
  std::fprintf(f, "  \"speedup_target\": 1.5,\n");
  std::fprintf(f, "  \"speedup_target_met\": %s,\n", min_speedup >= 1.5 ? "true" : "false");
  std::fprintf(f, "  \"fingerprints_identical\": %s\n", all_identical ? "true" : "false");
  std::fprintf(f, "}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = parse(argc, argv);

  std::vector<SystemResult> systems;
  systems.push_back(run_system(wl::SystemProfile::summit_2020(), args));
  systems.push_back(run_system(wl::SystemProfile::cori_2019(), args));

  double min_speedup = 0;
  bool all_identical = true;
  for (const SystemResult& s : systems) {
    std::printf("\n[%s]\n", s.system.c_str());
    std::printf("%-9s %10s %12s %9s %9s %9s %10s\n", "mode", "logs/s", "files/s", "parse",
                "summ", "accum", "allocs/log");
    print_mode(s.seed);
    print_mode(s.scratch);
    std::printf("speedup: %.2fx, fingerprints identical: %s\n", s.speedup,
                s.fingerprints_identical ? "yes" : "NO — RESULTS DIVERGED");
    if (min_speedup == 0 || s.speedup < min_speedup) min_speedup = s.speedup;
    all_identical = all_identical && s.fingerprints_identical;
  }

  MlpSweepResult mlp;
  const bool run_sweep = args.mlp_mb > 0;
  if (run_sweep) {
    mlp = run_mlp_sweep(args);
    std::printf("\n[mlp sweep] %.0f MB pool, %llu frames (shuffled)\n",
                static_cast<double>(mlp.segment_bytes) / 1e6,
                static_cast<unsigned long long>(mlp.frames));
    std::printf("%-9s %10s %10s\n", "depth", "scan_s", "MB/s");
    for (const MlpPoint& p : mlp.points) {
      std::printf("%-9u %10.4f %10.0f\n", p.depth, p.scan_s, p.mb_s);
    }
    std::printf("knee at depth %u, monotone to knee: %s, fingerprints identical: %s\n",
                mlp.knee_depth, mlp.monotone_to_knee ? "yes" : "NO",
                mlp.fingerprints_identical ? "yes" : "NO — RESULTS DIVERGED");
    all_identical = all_identical && mlp.fingerprints_identical;
  }

  write_json(args, systems, run_sweep ? &mlp : nullptr, min_speedup, all_identical);
  std::printf("wrote %s (min speedup %.2fx, target 1.5x)\n", args.out.c_str(), min_speedup);
  return all_identical ? 0 : 1;
}
