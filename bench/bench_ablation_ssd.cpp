// Ablation: Recommendation 4 — what the proposed SSD-oriented counters
// reveal, and what the proposed optimizations would save.
//
// Runs the Summit workload with the SSDEXT extension module enabled and
// reports (a) the static/dynamic data split and write-amplification
// distribution on SCNL, and (b) the device-write savings from Rec. 4's two
// optimizations: caching rewrites (absorb overwrites in RAM) and separating
// static from dynamic data (avoid GC-driven amplification of the static
// payload).
#include "bench_common.hpp"
#include "core/ssd_study.hpp"
#include "iosim/executor.hpp"

int main(int argc, char** argv) {
  using namespace mlio;
  const bench::Args args = bench::Args::parse(argc, argv, 2000);
  bench::header("Ablation: SSD-oriented counters (Rec. 4)",
                "Summit SCNL with the SSDEXT extension module enabled");

  const wl::SystemProfile& prof = wl::SystemProfile::summit_2020();
  wl::GeneratorConfig cfg;
  cfg.n_jobs = args.jobs;
  cfg.seed = args.seed;
  cfg.logs_per_job_scale = args.logs_scale;
  cfg.files_per_log_scale = args.files_scale;
  const wl::WorkloadGenerator gen(prof, cfg);

  sim::ExecutorConfig exec_cfg;
  exec_cfg.enable_ssd_ext = true;
  const sim::JobExecutor executor(wl::machine_for(prof), exec_cfg);

  core::SsdStudy study;
  gen.generate_bulk([&](const sim::JobSpec& spec) { study.add_log(executor.execute(spec)); });

  const double payload = study.bytes_written();
  const double waf_median = study.waf().quantile(0.5);
  const double waf_p95 = study.waf().quantile(0.95);
  // Device writes = payload * WAF + rewrite passes (also amplified).
  const double device_writes = (payload + study.rewrite_bytes()) * waf_median;
  const double with_rewrite_cache = payload * waf_median;  // rewrites absorbed in RAM
  const double with_separation =
      study.dynamic_bytes() * waf_median + study.static_bytes() * 1.0 +
      study.rewrite_bytes() * waf_median;  // static data stops paying GC tax

  util::Table t({"metric", "value"});
  t.add_row({"flash-backed files with writes", util::format_count(double(study.files()))});
  t.add_row({"written payload", util::format_bytes(payload)});
  t.add_row({"static payload (write-once)", util::format_bytes(study.static_bytes())});
  t.add_row({"dynamic payload (rewritten)", util::format_bytes(study.dynamic_bytes())});
  t.add_row({"dynamic share", bench::fmt(100.0 * study.dynamic_share(), 1) + "%"});
  t.add_row({"rewrite traffic", util::format_bytes(study.rewrite_bytes())});
  t.add_row({"sequential / random writes",
             util::format_bytes(study.seq_write_bytes()) + " / " +
                 util::format_bytes(study.random_write_bytes())});
  t.add_row({"WAF median / p95", bench::fmt(waf_median) + " / " + bench::fmt(waf_p95)});
  t.add_separator();
  t.add_row({"device writes (as-is)", util::format_bytes(device_writes)});
  t.add_row({"with rewrite caching", util::format_bytes(with_rewrite_cache)});
  t.add_row({"with static/dynamic separation", util::format_bytes(with_separation)});
  t.add_row({"flash-endurance saving (caching)",
             bench::fmt(100.0 * (1.0 - with_rewrite_cache / device_writes), 1) + "%"});
  bench::emit(args, t);

  std::printf("\nThese are the statistics Darshan cannot currently report (Rec. 4): the\n"
              "counters exist here as the opt-in SSDEXT module, so the optimization\n"
              "trade-offs the paper calls for become measurable.\n");
  return 0;
}
