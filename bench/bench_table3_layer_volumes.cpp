// Table 3 — number of files and total data transfer per storage layer.
//
// Full-scale estimates: bulk counts/volumes scaled by the generator factors
// plus the exact full-scale huge stratum.  The paper's headline ratios
// (PFS/in-system file and volume dominance; Summit's opposite read/write
// dominance across layers; Cori's read dominance) are printed as the
// shape check.
#include "bench_common.hpp"

namespace mlio {
namespace {

struct LayerEst {
  double files, read_pb, write_pb;
};

LayerEst estimate(const bench::SystemRun& run, core::Layer layer) {
  const auto& bulk = run.result.bulk.access().layer(layer);
  const auto& huge = run.result.huge.access().layer(layer);
  const double cs = run.gen.count_scale();
  LayerEst e;
  e.files = static_cast<double>(bulk.files) * cs + static_cast<double>(huge.files);
  e.read_pb = util::to_pb(bulk.bytes_read * cs + huge.bytes_read);
  e.write_pb = util::to_pb(bulk.bytes_written * cs + huge.bytes_written);
  return e;
}

}  // namespace
}  // namespace mlio

int main(int argc, char** argv) {
  using namespace mlio;
  const bench::Args args = bench::Args::parse(argc, argv, 2500);
  bench::header("Table 3",
                "Files and total transfer per layer; PB at full scale (bulk scaled + huge "
                "stratum exact)");

  struct PaperRow {
    const char* layer;
    double files_m, read_pb, write_pb;
  };
  const PaperRow paper_summit[] = {{"SCNL", 279.39, 4.43, 2.69},
                                   {"PFS", 1015.46, 197.75, 8278.05}};
  const PaperRow paper_cori[] = {{"CBB", 13.96, 13.71, 4.34}, {"PFS", 402.95, 171.64, 26.10}};

  util::Table t({"system", "layer", "files paper", "files est.", "read PB paper",
                 "read PB est.", "write PB paper", "write PB est."});
  util::Table ratios({"system", "shape check", "paper", "measured"});

  for (const auto* prof : {&wl::SystemProfile::summit_2020(), &wl::SystemProfile::cori_2019()}) {
    const bench::SystemRun run = bench::run_system(*prof, args);
    const bool summit = prof->system == "Summit";
    const PaperRow* rows = summit ? paper_summit : paper_cori;

    const LayerEst ins = estimate(run, core::Layer::kInSystem);
    const LayerEst pfs = estimate(run, core::Layer::kPfs);
    const LayerEst est[2] = {ins, pfs};
    for (int i = 0; i < 2; ++i) {
      t.add_row({prof->system, rows[i].layer, bench::fmt(rows[i].files_m) + "M",
                 util::format_count(est[i].files), bench::fmt(rows[i].read_pb),
                 bench::fmt(est[i].read_pb), bench::fmt(rows[i].write_pb),
                 bench::fmt(est[i].write_pb)});
    }
    t.add_separator();

    const double paper_file_ratio = rows[1].files_m / rows[0].files_m;
    ratios.add_row({prof->system, "PFS/in-system file count",
                    bench::fmt(paper_file_ratio, 1) + "x",
                    bench::fmt(pfs.files / std::max(1.0, ins.files), 1) + "x"});
    ratios.add_row({prof->system, summit ? "PFS write >> PFS read" : "PFS read >> PFS write",
                    bench::fmt(summit ? rows[1].write_pb / rows[1].read_pb
                                      : rows[1].read_pb / rows[1].write_pb, 1) + "x",
                    bench::fmt(summit ? pfs.write_pb / std::max(1e-9, pfs.read_pb)
                                      : pfs.read_pb / std::max(1e-9, pfs.write_pb), 1) + "x"});
    ratios.add_row({prof->system,
                    summit ? "SCNL read > SCNL write" : "CBB read > CBB write",
                    bench::fmt(rows[0].read_pb / rows[0].write_pb, 2) + "x",
                    bench::fmt(ins.read_pb / std::max(1e-9, ins.write_pb), 2) + "x"});
    ratios.add_separator();
  }
  bench::emit(args, t);
  std::printf("\nShape checks (who dominates, and by roughly how much):\n");
  bench::emit(args, ratios);
  return 0;
}
