// Fig. 3 — CDFs of per-file transfer size for reads and writes on each
// layer of each system, over the coarse transfer bins.
//
// Paper anchor points (§3.2.1): Summit PFS 97% of reads / 99% of writes
// below 1 GB, SCNL 99%/99%; Cori CBB 99.04%/97.77%, PFS 99.05%/90.91%.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace mlio;
  const bench::Args args = bench::Args::parse(argc, argv, 2000);
  bench::header("Figure 3", "CDF of per-file transfer size (percent of files <= bin)");

  struct Anchor {
    double read, write;
  };
  // [system][layer] anchors at the 1 GB point.
  const Anchor anchors_summit[2] = {{99.0, 99.0}, {97.0, 99.0}};   // in-system, PFS
  const Anchor anchors_cori[2] = {{99.04, 97.77}, {99.05, 90.91}};

  const auto& bins = util::BinSpec::transfer_bins_coarse();
  std::vector<std::string> headers = {"system", "layer", "dir"};
  for (const auto& l : bins.labels()) headers.push_back(l);
  util::Table t(headers);

  util::Table anchor_table(
      {"system", "layer", "dir", "paper %<1GB", "measured %<1GB"});

  for (const auto* prof : {&wl::SystemProfile::summit_2020(), &wl::SystemProfile::cori_2019()}) {
    const bench::SystemRun run = bench::run_system(*prof, args, /*include_huge=*/false);
    const Anchor* anchors = prof->system == "Summit" ? anchors_summit : anchors_cori;
    for (int li = 0; li < 2; ++li) {
      const auto layer = li == 0 ? core::Layer::kInSystem : core::Layer::kPfs;
      const auto& st = run.result.bulk.access().layer(layer);
      const char* lname = li == 0 ? (prof->system == "Summit" ? "SCNL" : "CBB") : "PFS";
      for (const bool read : {true, false}) {
        const auto cdf = (read ? st.read_transfer : st.write_transfer).cdf_percent();
        std::vector<std::string> row = {prof->system, lname, read ? "read" : "write"};
        for (const double v : cdf) row.push_back(bench::fmt(v));
        t.add_row(std::move(row));
        anchor_table.add_row({prof->system, lname, read ? "read" : "write",
                              bench::fmt(read ? anchors[li].read : anchors[li].write),
                              bench::fmt(cdf[0])});
      }
    }
    t.add_separator();
    anchor_table.add_separator();
  }
  bench::emit(args, t);
  std::printf("\nAnchor check (cumulative share of files below 1 GB):\n");
  bench::emit(args, anchor_table);
  return 0;
}
