// Fig. 9 — per-interface transfer-size CDFs on Summit (reads and writes,
// POSIX / MPI-IO / STDIO, on each layer).
//
// Paper anchors: STDIO reads below 1 GB: >= 98.7% on SCNL, 100% on PFS;
// STDIO writes below 1 GB: >= 82.4% on SCNL, >= 97.6% on PFS.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace mlio;
  const bench::Args args = bench::Args::parse(argc, argv, 2000);
  bench::header("Figure 9", "Summit: per-interface transfer-size CDFs (percent of files)");

  const bench::SystemRun run =
      bench::run_system(wl::SystemProfile::summit_2020(), args, /*include_huge=*/false);

  const auto& bins = util::BinSpec::transfer_bins_perf();
  std::vector<std::string> headers = {"layer", "iface", "dir"};
  for (const auto& l : bins.labels()) headers.push_back(l);
  util::Table t(headers);
  util::Table anchors({"layer", "dir", "paper STDIO %<1GB", "measured"});

  const char* iface_names[3] = {"POSIX", "MPI-IO", "STDIO"};
  for (int li = 0; li < 2; ++li) {
    const auto layer = li == 0 ? core::Layer::kInSystem : core::Layer::kPfs;
    const char* lname = li == 0 ? "SCNL" : "PFS";
    for (std::size_t iface = 0; iface < 3; ++iface) {
      for (const bool read : {true, false}) {
        const auto& h = run.result.bulk.interfaces().transfer(layer, iface, read);
        const auto cdf = h.cdf_percent();
        std::vector<std::string> row = {lname, iface_names[iface], read ? "read" : "write"};
        for (const double v : cdf) row.push_back(bench::fmt(v, 1));
        t.add_row(std::move(row));
        if (iface == 2) {
          // Below 1 GB = bins 0 + 1 of the perf binning.
          const double below = cdf[1];
          anchors.add_row({lname, read ? "read" : "write",
                           li == 0 ? (read ? ">=98.7" : ">=82.4") : (read ? "100" : ">=97.6"),
                           bench::fmt(below)});
        }
      }
    }
    t.add_separator();
  }
  bench::emit(args, t);
  std::printf("\nAnchor check (STDIO file transfers below 1 GB):\n");
  bench::emit(args, anchors);
  return 0;
}
