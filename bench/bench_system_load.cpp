// System-load view: reconstruct the year's per-layer I/O load from the log
// archive (the operations perspective the paper's deployment conclusions
// address).  Reports per-layer mean/peak throughput, utilization against the
// machines' published peaks, and concurrency — and checks the paper's
// premise that the systems are "consistently busy".
#include "bench_common.hpp"
#include "core/load_timeline.hpp"
#include "iosim/executor.hpp"

int main(int argc, char** argv) {
  using namespace mlio;
  const bench::Args args = bench::Args::parse(argc, argv, 1500);
  bench::header("System load", "Per-layer load reconstructed from the log archive");

  constexpr std::int64_t kYear = 365ll * 24 * 3600;
  for (const auto* prof : {&wl::SystemProfile::summit_2020(), &wl::SystemProfile::cori_2019()}) {
    wl::GeneratorConfig cfg;
    cfg.n_jobs = args.jobs;
    cfg.seed = args.seed;
    cfg.logs_per_job_scale = args.logs_scale;
    cfg.files_per_log_scale = args.files_scale;
    const wl::WorkloadGenerator gen(*prof, cfg);
    const sim::Machine& machine = wl::machine_for(*prof);
    const sim::JobExecutor executor(machine);

    core::LoadTimeline tl(kYear, 24 * 365);  // hourly buckets
    gen.generate_bulk([&](const sim::JobSpec& spec) { tl.add_log(executor.execute(spec)); });

    const double cs = gen.count_scale();  // scale throughputs to full production
    util::Table t({"layer", "dir", "mean (est.)", "peak bucket (est.)", "peak util."});
    const double peaks[2][2] = {
        {machine.in_system().perf().peak_read_bw, machine.in_system().perf().peak_write_bw},
        {machine.pfs().perf().peak_read_bw, machine.pfs().perf().peak_write_bw}};
    for (int li = 0; li < 2; ++li) {
      const auto layer = li == 0 ? core::Layer::kInSystem : core::Layer::kPfs;
      const char* lname = li == 0 ? (prof->system == "Summit" ? "SCNL" : "CBB") : "PFS";
      for (const bool read : {true, false}) {
        const double mean = tl.mean_throughput(layer, read) * cs;
        const double peak = tl.peak_throughput(layer, read) * cs;
        t.add_row({lname, read ? "read" : "write", util::format_bandwidth(mean),
                   util::format_bandwidth(peak),
                   bench::fmt(100.0 * peak / peaks[li][read ? 0 : 1], 2) + "%"});
      }
    }
    std::printf("\n-- %s --\n", prof->system.c_str());
    bench::emit(args, t);
    std::printf("busy fraction of hourly buckets: %.1f%%; peak concurrent logs (at %.3f%% "
                "of production job scale): %u\n",
                100.0 * tl.busy_fraction(), 100.0 / gen.log_scale(),
                tl.peak_concurrency());
  }
  std::printf("\nPaper premise (§3.4): the systems are consistently busy, so per-job\n"
              "delivered bandwidth is a small contended share of the peak.  Read the\n"
              "mean rows for utilization; scaling a single bench-scale burst bucket by\n"
              "the count factor overstates peaks (at full scale the load spreads over\n"
              "many more concurrent jobs rather than amplifying one spike).\n");
  return 0;
}
