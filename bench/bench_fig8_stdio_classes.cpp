// Fig. 8 — RO/RW/WO classification of STDIO-managed files per layer.
//
// Paper observations: STDIO files concentrate on the in-system layers far
// more than the overall population does — on Summit the SCNL share of STDIO
// files exceeds the PFS share in every class; on Cori the STDIO:POSIX ratio
// on CBB is several times the ratio on the PFS.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace mlio;
  const bench::Args args = bench::Args::parse(argc, argv, 2000);
  bench::header("Figure 8", "Classification of STDIO-managed files per layer");

  util::Table t({"system", "layer", "read-only", "read-write", "write-only"});
  util::Table ratios({"system", "shape check", "paper", "measured"});

  for (const auto* prof : {&wl::SystemProfile::summit_2020(), &wl::SystemProfile::cori_2019()}) {
    const bench::SystemRun run = bench::run_system(*prof, args, /*include_huge=*/false);
    const auto& ins = run.result.bulk.interfaces().stdio_classes(core::Layer::kInSystem);
    const auto& pfs = run.result.bulk.interfaces().stdio_classes(core::Layer::kPfs);
    const char* iname = prof->system == "Summit" ? "SCNL" : "CBB";
    t.add_row({prof->system, iname, util::format_count(double(ins.read_only)),
               util::format_count(double(ins.read_write)),
               util::format_count(double(ins.write_only))});
    t.add_row({prof->system, "PFS", util::format_count(double(pfs.read_only)),
               util::format_count(double(pfs.read_write)),
               util::format_count(double(pfs.write_only))});
    t.add_separator();

    // Over-representation of STDIO on the in-system layer: share of STDIO
    // files there vs. share of all files there.
    const auto& ac = run.result.bulk.access();
    const double stdio_ins = static_cast<double>(ins.read_only + ins.read_write + ins.write_only);
    const double stdio_all =
        stdio_ins + static_cast<double>(pfs.read_only + pfs.read_write + pfs.write_only);
    const double files_ins = static_cast<double>(ac.layer(core::Layer::kInSystem).files);
    const double files_all =
        files_ins + static_cast<double>(ac.layer(core::Layer::kPfs).files);
    const double over = (stdio_ins / std::max(1.0, stdio_all)) /
                        std::max(1e-9, files_ins / std::max(1.0, files_all));
    // Fig. 8's Cori ratios (4.2x/23.6x/4.39x) cannot hold together with
    // Table 6's CBB counts (0.65M STDIO vs 13M POSIX files); we follow
    // Table 6, so Cori shows STDIO *under*-representation by file count.
    ratios.add_row({prof->system, "STDIO over-representation on in-system layer",
                    prof->system == "Summit" ? ">1 (dominant)"
                                             : "<1 (Table 6 wins; Fig. 8 inconsistent)",
                    bench::fmt(over, 2) + "x"});
  }
  bench::emit(args, t);
  std::printf("\nShape check (STDIO concentrates on the in-system layer):\n");
  bench::emit(args, ratios);
  return 0;
}
