// Table 5 — jobs accessing files exclusively on the PFS, exclusively on the
// in-system layer, or on both, aggregated over each job's Darshan logs.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace mlio;
  const bench::Args args = bench::Args::parse(argc, argv, 2500);
  bench::header("Table 5", "Job layer-exclusivity (shares of jobs with attributed I/O)");

  util::Table t({"system", "class", "paper share", "measured share", "paper count",
                 "full-scale est."});
  for (const auto* prof : {&wl::SystemProfile::summit_2020(), &wl::SystemProfile::cori_2019()}) {
    const bench::SystemRun run = bench::run_system(*prof, args, /*include_huge=*/false);
    const auto ex = run.result.bulk.layers().job_exclusivity();
    const double total = static_cast<double>(ex.pfs_only + ex.insys_only + ex.both);
    const double paper_total = prof->jobs_pfs_only + prof->jobs_insys_only + prof->jobs_both;

    auto row = [&](const char* what, double paper_count, std::uint64_t measured) {
      t.add_row({prof->system, what,
                 bench::fmt(100.0 * paper_count / paper_total, 2) + "%",
                 bench::fmt(100.0 * static_cast<double>(measured) / total, 2) + "%",
                 util::format_count(paper_count),
                 util::format_count(static_cast<double>(measured) * run.gen.job_scale())});
    };
    row("PFS only", prof->jobs_pfs_only, ex.pfs_only);
    row("in-system only", prof->jobs_insys_only, ex.insys_only);
    row("both layers", prof->jobs_both, ex.both);
    t.add_separator();
  }
  bench::emit(args, t);
  std::printf("\nKey observation (paper): 14.38%% of Cori jobs use CBB exclusively; Summit "
              "jobs essentially never use SCNL exclusively.\n");
  return 0;
}
