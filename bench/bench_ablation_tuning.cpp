// Ablation: the I/O stack tuning parameters the paper's §5 names as future
// work — Lustre striping (`lfs setstripe`), MPI-IO collective buffering, and
// the number of DataWarp fragments backing a burst-buffer allocation.
// Each sweep drives the mechanistic performance model directly (noise off)
// so the numbers isolate the parameter under study.
#include "bench_common.hpp"
#include "iosim/datawarp.hpp"
#include "iosim/perf_model.hpp"

namespace {

using namespace mlio;

sim::PerfModel quiet_model() {
  sim::PerfModelConfig cfg;
  cfg.noise_sigma = 0.0;
  return sim::PerfModel(cfg);
}

void striping_sweep(const bench::Args& args) {
  bench::header("Ablation: Lustre striping",
                "256-rank shared-file write on Cori scratch vs stripe count "
                "(default stripe_count=1 is the §2.1.2 bottleneck)");
  const sim::Machine& m = sim::Machine::cori();
  const sim::PerfModel pm = quiet_model();
  util::Table t({"stripe count", "aggregate bandwidth", "vs default"});
  double base = 0;
  for (const std::uint32_t count : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u, 248u}) {
    sim::AccessRequest req;
    req.layer = &m.pfs();
    req.dir = sim::Direction::kWrite;
    req.total_bytes = 100 * util::kGB;
    req.op_size = util::kMiB;
    req.streams = 256;
    req.nodes = 8;
    req.contention = 0.05;
    req.node_link_bw = m.node_link_bw();
    req.placement = sim::Placement{count, util::kMiB, 0};
    const double bw = pm.aggregate_bandwidth(req);
    if (count == 1) base = bw;
    t.add_row({std::to_string(count), util::format_bandwidth(bw),
               bench::fmt(bw / base, 1) + "x"});
  }
  bench::emit(args, t);
}

void collective_sweep(const bench::Args& args) {
  bench::header("Ablation: MPI-IO collective buffering",
                "64-rank shared write on Alpine, per-rank request size sweep, "
                "independent vs collective (cb_buffer = 16 MiB)");
  const sim::Machine& m = sim::Machine::summit();
  const sim::PerfModel pm = quiet_model();
  util::Table t({"request size", "independent", "collective", "gain"});
  for (const std::uint64_t op : {512ull, 4096ull, 65536ull, 1048576ull, 16777216ull}) {
    sim::AccessRequest req;
    req.layer = &m.pfs();
    req.iface = sim::Interface::kMpiIo;
    req.dir = sim::Direction::kWrite;
    req.total_bytes = 10 * util::kGB;
    req.op_size = op;
    req.streams = 64;
    req.nodes = 2;
    req.contention = 0.05;
    req.node_link_bw = m.node_link_bw();
    util::Rng rng(op);
    req.placement = m.pfs().place(req.total_bytes, 0, rng);
    req.collective = false;
    const double indep = pm.aggregate_bandwidth(req);
    req.collective = true;
    const double coll = pm.aggregate_bandwidth(req);
    t.add_row({util::format_bytes(double(op)), util::format_bandwidth(indep),
               util::format_bandwidth(coll), bench::fmt(coll / indep, 1) + "x"});
  }
  bench::emit(args, t);
  std::printf("Rec. 2 takeaway: middleware-level aggregation rescues exactly the small "
              "requests that dominate Figs. 4/5.\n");
}

void bb_fragment_sweep(const bench::Args& args) {
  bench::header("Ablation: DataWarp allocation width",
                "Staging 1 TB into CBB vs the number of burst-buffer fragments "
                "(capacity request rounded to 20 GiB granularity)");
  const sim::Machine& m = sim::Machine::cori();
  const sim::PerfModel pm = quiet_model();
  const auto& bb = dynamic_cast<const sim::BurstBufferLayer&>(m.in_system());
  util::Table t({"fragments", "capacity request", "BB-side bandwidth"});
  for (const std::uint64_t cap_gib : {20ull, 40ull, 160ull, 640ull, 2560ull, 10240ull}) {
    const std::uint64_t request = cap_gib * util::kGiB;
    const std::uint32_t frags = bb.fragments_for(request);
    sim::AccessRequest req;
    req.layer = &bb;
    req.dir = sim::Direction::kWrite;
    req.total_bytes = util::kTB;
    req.op_size = 8 * util::kMiB;
    req.streams = frags;
    req.nodes = frags;
    req.contention = 0.1;
    req.node_link_bw = m.node_link_bw();
    req.placement = sim::Placement{frags, bb.config().granularity, 0};
    t.add_row({std::to_string(frags), util::format_bytes(double(request)),
               util::format_bandwidth(pm.aggregate_bandwidth(req))});
  }
  bench::emit(args, t);
  std::printf("Requesting more capacity than needed widens the fragment stripe — the "
              "paper's \"number of burst buffer nodes\" tuning knob.\n");
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = mlio::bench::Args::parse(argc, argv, 0);
  striping_sweep(args);
  collective_sweep(args);
  bb_fragment_sweep(args);
  return 0;
}
