// Fig. 12 — Cori: read/write bandwidth of single-shared files, POSIX vs
// STDIO, per layer and transfer-size bin (boxplots).
//
// Paper shape anchors: PFS reads — POSIX 6.78x STDIO at 1 GB, 2.9x at 10 GB;
// PFS writes — 3.67x at 100 MB, 2.02x at 1 GB (max 8.47x); CBB writes —
// POSIX gains with larger transfers.
#include "bench_perf_common.hpp"

int main(int argc, char** argv) {
  using namespace mlio;
  const bench::Args args = bench::Args::parse(argc, argv, 2500);
  bench::header("Figure 12",
                "Cori: single-shared-file bandwidth, POSIX vs STDIO (MB/s boxplots)");

  const bench::SystemRun run = bench::run_system(wl::SystemProfile::cori_2019(), args);

  const bench::RatioCheck checks[] = {
      {core::Layer::kPfs, true, 2, "6.78x (1GB)"},
      {core::Layer::kPfs, true, 3, "2.9x (10GB)"},
      {core::Layer::kPfs, false, 1, "3.67x (100MB)"},
      {core::Layer::kPfs, false, 2, "2.02x (1GB)"},
  };
  bench::print_perf_figure(args, run, checks);

  // CBB writes: POSIX bandwidth should grow with the transfer size.
  const core::Performance& perf = run.result.combined().performance();
  std::printf("CBB POSIX write medians by bin (paper: larger transfers gain): ");
  for (std::size_t b = 0; b < core::Performance::bins().size(); ++b) {
    const auto f = perf.cell(core::Layer::kInSystem, 0, b, false);
    if (f.count > 0) std::printf("%s=%.0f ", core::Performance::bins().label(b).c_str(),
                                 f.median);
  }
  std::printf("MB/s\n");
  return 0;
}
