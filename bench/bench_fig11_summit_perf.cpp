// Fig. 11 — Summit: read/write bandwidth of single-shared files, POSIX vs
// STDIO, per layer and transfer-size bin (boxplots).
//
// Paper shape anchors: PFS reads — POSIX ~40x STDIO at 100GB-1TB, ~3x below
// 100 GB; SCNL reads — 5x at 100MB-1GB rising to 8x at 10-100GB; PFS writes
// — 1.6x at 100MB-1GB, comparable elsewhere; SCNL writes — *inversion*:
// STDIO 1.5x faster than POSIX at 100MB-1GB; and only 5 STDIO shared files
// above 1 TB (they appear in the 1TB+ write boxes).
#include "bench_perf_common.hpp"

int main(int argc, char** argv) {
  using namespace mlio;
  const bench::Args args = bench::Args::parse(argc, argv, 2500);
  bench::header("Figure 11",
                "Summit: single-shared-file bandwidth, POSIX vs STDIO (MB/s boxplots)");

  const bench::SystemRun run = bench::run_system(wl::SystemProfile::summit_2020(), args);

  const bench::RatioCheck checks[] = {
      {core::Layer::kPfs, true, 4, "~40x (100GB-1TB)"},
      {core::Layer::kPfs, true, 2, "~3x (<100GB)"},
      {core::Layer::kPfs, true, 1, "~3x (<100GB)"},
      {core::Layer::kInSystem, true, 1, "5x (100MB-1GB)"},
      {core::Layer::kInSystem, true, 3, "8x (10-100GB)"},
      {core::Layer::kPfs, false, 1, "1.6x (100MB-1GB)"},
      {core::Layer::kInSystem, false, 1, "0.67x (STDIO wins 1.5x)"},
  };
  bench::print_perf_figure(args, run, checks);

  // The Fig. 11b footnote: exactly 5 STDIO shared files > 1 TB written.
  const auto cell = run.result.combined().performance().cell(core::Layer::kPfs, 1, 5, false);
  std::printf("STDIO shared files >1TB written: %llu (paper: 5)\n",
              static_cast<unsigned long long>(cell.count));
  return 0;
}
