// Fig. 10 — total STDIO transfer by science domain, plus the STDIO job
// census of §3.3.2.
//
// Paper observations: 287,164 Cori jobs used STDIO, 90.02% of them carrying
// a science-domain tag; physics moved the most STDIO bytes (5.43 PB written
// / 12.57 PB read); on Summit >175 K jobs (62% of all jobs) used STDIO.
#include <algorithm>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace mlio;
  const bench::Args args = bench::Args::parse(argc, argv, 2000);
  bench::header("Figure 10", "STDIO transfer by science domain");

  for (const auto* prof : {&wl::SystemProfile::summit_2020(), &wl::SystemProfile::cori_2019()}) {
    const bench::SystemRun run = bench::run_system(*prof, args, /*include_huge=*/false);
    const auto& iu = run.result.bulk.interfaces();
    const double cs = run.gen.count_scale();

    std::vector<std::pair<std::string, core::InterfaceUsage::DomainStdio>> sorted(
        iu.stdio_domains().begin(), iu.stdio_domains().end());
    std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
      return a.second.bytes_read + a.second.bytes_written >
             b.second.bytes_read + b.second.bytes_written;
    });

    util::Table t({"domain", "STDIO read TB (est.)", "STDIO write TB (est.)"});
    double total_read = 0, total_write = 0;
    for (const auto& [name, d] : sorted) {
      total_read += d.bytes_read;
      total_write += d.bytes_written;
      t.add_row({name, bench::fmt(util::to_tb(d.bytes_read * cs)),
                 bench::fmt(util::to_tb(d.bytes_written * cs))});
    }

    const double stdio_jobs_est = static_cast<double>(iu.stdio_jobs()) * run.gen.job_scale();
    const double with_domain =
        100.0 * static_cast<double>(iu.stdio_jobs_with_domain()) /
        std::max<double>(1.0, static_cast<double>(iu.stdio_jobs()));
    const double job_share = 100.0 * static_cast<double>(iu.stdio_jobs()) /
                             std::max<double>(1.0, static_cast<double>(
                                                       run.result.bulk.summary().jobs()));

    std::printf("\n-- %s --\n", prof->system.c_str());
    bench::emit(args, t);
    std::printf("STDIO totals (full-scale est.): read %s, write %s\n",
                util::format_bytes(total_read * cs).c_str(),
                util::format_bytes(total_write * cs).c_str());
    if (prof->system == "Cori") {
      std::printf("STDIO jobs: est. %s (paper: 287.2K); with domain tag: %.2f%% "
                  "(paper: 90.02%%); physics leads (paper: 12.57 PB read / 5.43 PB "
                  "written)\n",
                  util::format_count(stdio_jobs_est).c_str(), with_domain);
    } else {
      std::printf("STDIO job share: %.1f%% of jobs (paper: ~62%%, >175K jobs)\n", job_share);
    }

    // Extension census (§3.3.2: ~70% of Cori's STDIO files are .rst/.dat/.vol).
    const auto& exts = iu.stdio_extensions();
    double total_ext = 0, rdv = 0;
    for (const auto& [ext, n] : exts) {
      total_ext += static_cast<double>(n);
      if (ext == ".rst" || ext == ".dat" || ext == ".vol") rdv += static_cast<double>(n);
    }
    if (total_ext > 0) {
      std::printf(".rst/.dat/.vol share of STDIO files: %.1f%% (paper, Cori: ~70%%)\n",
                  100.0 * rdv / total_ext);
    }
  }
  return 0;
}
