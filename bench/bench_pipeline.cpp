// Pipeline microbenchmarks (google-benchmark): throughput of the log format,
// the simulator, and the analysis engine.
#include <benchmark/benchmark.h>

#include "core/analysis.hpp"
#include "darshan/log_format.hpp"
#include "iosim/executor.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"
#include "workload/generator.hpp"
#include "workload/pipeline.hpp"

namespace {

using namespace mlio;

std::vector<sim::JobSpec> sample_specs(std::size_t n) {
  wl::GeneratorConfig cfg;
  cfg.seed = 11;
  cfg.n_jobs = 64;
  cfg.logs_per_job_scale = 0.25;
  cfg.files_per_log_scale = 0.25;
  const wl::WorkloadGenerator gen(wl::SystemProfile::summit_2020(), cfg);
  std::vector<sim::JobSpec> specs;
  gen.generate_bulk([&](const sim::JobSpec& s) {
    if (specs.size() < n) specs.push_back(s);
  });
  return specs;
}

std::vector<darshan::LogData> sample_logs(std::size_t n) {
  static const sim::Machine machine = sim::Machine::summit();
  const sim::JobExecutor ex(machine);
  std::vector<darshan::LogData> logs;
  for (const auto& spec : sample_specs(n)) logs.push_back(ex.execute(spec));
  return logs;
}

void BM_GenerateJobs(benchmark::State& state) {
  wl::GeneratorConfig cfg;
  cfg.seed = 3;
  cfg.n_jobs = static_cast<std::uint64_t>(state.range(0));
  cfg.logs_per_job_scale = 0.25;
  cfg.files_per_log_scale = 0.25;
  const wl::WorkloadGenerator gen(wl::SystemProfile::summit_2020(), cfg);
  std::uint64_t files = 0;
  for (auto _ : state) {
    files = 0;
    gen.generate_bulk([&](const sim::JobSpec& s) { files += s.files.size(); });
    benchmark::DoNotOptimize(files);
  }
  state.counters["files"] = static_cast<double>(files);
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(files));
}
BENCHMARK(BM_GenerateJobs)->Arg(16)->Arg(64);

void BM_ExecuteJob(benchmark::State& state) {
  static const sim::Machine machine = sim::Machine::summit();
  const sim::JobExecutor ex(machine);
  const auto specs = sample_specs(32);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ex.execute(specs[i % specs.size()]));
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ExecuteJob);

void BM_LogWrite(benchmark::State& state) {
  const auto logs = sample_logs(16);
  std::size_t i = 0;
  std::size_t bytes = 0;
  for (auto _ : state) {
    const auto buf = darshan::write_log_bytes(logs[i % logs.size()]);
    bytes += buf.size();
    benchmark::DoNotOptimize(buf);
    ++i;
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_LogWrite);

void BM_LogRead(benchmark::State& state) {
  const auto logs = sample_logs(16);
  std::vector<std::vector<std::byte>> bufs;
  for (const auto& log : logs) bufs.push_back(darshan::write_log_bytes(log));
  std::size_t i = 0;
  std::size_t bytes = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(darshan::read_log_bytes(bufs[i % bufs.size()]));
    bytes += bufs[i % bufs.size()].size();
    ++i;
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_LogRead);

void BM_Analyze(benchmark::State& state) {
  const auto logs = sample_logs(32);
  for (auto _ : state) {
    core::Analysis a;
    for (const auto& log : logs) a.add(log);
    benchmark::DoNotOptimize(a.summary().files());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(logs.size()));
}
BENCHMARK(BM_Analyze);

void BM_EndToEndPipeline(benchmark::State& state) {
  wl::GeneratorConfig cfg;
  cfg.seed = 5;
  cfg.n_jobs = 32;
  cfg.logs_per_job_scale = 0.25;
  cfg.files_per_log_scale = 0.25;
  const wl::WorkloadGenerator gen(wl::SystemProfile::cori_2019(), cfg);
  wl::PipelineOptions opts;
  opts.include_huge = false;
  for (auto _ : state) {
    const auto result = wl::run_pipeline(gen, opts);
    benchmark::DoNotOptimize(result.bulk.summary().files());
  }
}
BENCHMARK(BM_EndToEndPipeline);

}  // namespace

BENCHMARK_MAIN();
