// Table 4 — files with more than 1 TB of transfer per layer and direction.
//
// The >1 TB population is generated as a dedicated full-scale stratum
// (DESIGN.md §4), so the counts here are exact reproductions; the bench also
// verifies that the bulk stratum contributes none and reprints the paper's
// derived percentages (91.35% of Cori's >1 TB writes on PFS; 87.39% of its
// >1 TB reads on CBB; Summit's huge files PFS-only).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace mlio;
  const bench::Args args = bench::Args::parse(argc, argv, 200);
  bench::header("Table 4", "Files with total transfer > 1 TB per layer (full-scale stratum)");

  struct PaperRow {
    const char* layer;
    std::uint64_t read, write;
  };
  const PaperRow paper_summit[] = {{"SCNL", 0, 0}, {"PFS", 7232, 78}};
  const PaperRow paper_cori[] = {{"CBB", 513, 950}, {"PFS", 74, 10045}};

  util::Table t({"system", "layer", "read paper", "read measured", "write paper",
                 "write measured"});
  bool all_exact = true;
  std::uint64_t bulk_huge = 0;

  for (const auto* prof : {&wl::SystemProfile::summit_2020(), &wl::SystemProfile::cori_2019()}) {
    const bench::SystemRun run = bench::run_system(*prof, args);
    const PaperRow* rows = prof->system == "Summit" ? paper_summit : paper_cori;
    for (int i = 0; i < 2; ++i) {
      const auto layer = i == 0 ? core::Layer::kInSystem : core::Layer::kPfs;
      const auto& huge = run.result.huge.access().layer(layer);
      const auto& bulk = run.result.bulk.access().layer(layer);
      bulk_huge += bulk.huge_read_files + bulk.huge_write_files;
      all_exact &= huge.huge_read_files == rows[i].read &&
                   huge.huge_write_files == rows[i].write;
      t.add_row({prof->system, rows[i].layer, std::to_string(rows[i].read),
                 std::to_string(huge.huge_read_files), std::to_string(rows[i].write),
                 std::to_string(huge.huge_write_files)});
    }
    t.add_separator();

    if (prof->system == "Cori") {
      const auto& cbb = run.result.huge.access().layer(core::Layer::kInSystem);
      const auto& pfs = run.result.huge.access().layer(core::Layer::kPfs);
      const double pfs_write_share =
          100.0 * static_cast<double>(pfs.huge_write_files) /
          static_cast<double>(pfs.huge_write_files + cbb.huge_write_files);
      const double cbb_read_share =
          100.0 * static_cast<double>(cbb.huge_read_files) /
          static_cast<double>(cbb.huge_read_files + pfs.huge_read_files);
      std::printf("Cori: %.2f%% of >1TB writes on PFS (paper: 91.35%%), "
                  "%.2f%% of >1TB reads on CBB (paper: 87.39%%)\n",
                  pfs_write_share, cbb_read_share);
    }
  }
  bench::emit(args, t);
  std::printf("bulk-stratum >1TB files (must be 0): %llu\n",
              static_cast<unsigned long long>(bulk_huge));
  std::printf("table reproduced exactly: %s\n", all_exact ? "yes" : "NO");
  return all_exact && bulk_huge == 0 ? 0 : 1;
}
