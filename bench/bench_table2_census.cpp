// Table 2 — census of the Darshan collections: logs, jobs, files, node-hours.
//
// Measured counts are taken from the generated bulk population and scaled to
// full production scale via the generator's scale factors; the paper's
// published census is printed alongside.
#include "bench_common.hpp"

namespace mlio {
namespace {

void census_rows(util::Table& t, const bench::SystemRun& run) {
  const auto& s = run.result.bulk.summary();
  const auto& p = *run.profile;
  const double job_est = static_cast<double>(s.jobs()) * run.gen.job_scale();
  const double log_est = static_cast<double>(s.logs()) * run.gen.log_scale();
  const double file_est = static_cast<double>(s.files()) * run.gen.count_scale();
  const double nh_est = s.node_hours() * run.gen.log_scale();

  auto row = [&](const char* what, double paper, double measured, double estimate) {
    t.add_row({p.system, what, util::format_count(paper), util::format_count(measured),
               util::format_count(estimate), bench::deviation(paper, estimate)});
  };
  row("jobs", p.real_jobs, static_cast<double>(s.jobs()), job_est);
  row("logs", p.real_logs, static_cast<double>(s.logs()), log_est);
  row("files", p.real_files, static_cast<double>(s.files()), file_est);
  row("node-hours", p.real_node_hours, s.node_hours(), nh_est);
  t.add_row({p.system, "darshan version", p.darshan_version, "-", "-", "-"});
  t.add_row({p.system, "logs/job (max)", p.system == "Summit" ? "34341" : "9999",
             std::to_string(s.max_logs_per_job()), "-", "-"});
  t.add_separator();
}

}  // namespace
}  // namespace mlio

int main(int argc, char** argv) {
  using namespace mlio;
  const bench::Args args = bench::Args::parse(argc, argv, 1200);
  bench::header("Table 2", "Summary of Darshan data on both systems (paper vs. estimate)");

  util::Table t({"system", "metric", "paper", "measured", "full-scale est.", "deviation"});
  for (const auto* prof : {&wl::SystemProfile::summit_2020(), &wl::SystemProfile::cori_2019()}) {
    census_rows(t, bench::run_system(*prof, args, /*include_huge=*/false));
  }
  bench::emit(args, t);
  return 0;
}
