// Pipeline scaling driver: measures end-to-end throughput of the
// generate→simulate→analyze pipeline under three schedulers on a skewed
// population (full >1 TB hero stratum included) and writes the numbers to
// BENCH_pipeline.json so the perf trajectory is tracked across PRs.
//
//   seed     — the original pipeline: threads*4 static job chunks, the huge
//              stratum serial on the caller, a fresh LogData (and fresh
//              codec buffers when --roundtrip) per job.  Re-implemented here
//              so the baseline stays measurable after the refactor.
//   static   — run_pipeline with Scheduling::kStatic: fixed-size blocks in
//              contiguous runs, per-worker scratch reuse, parallel huge.
//   dynamic  — run_pipeline with Scheduling::kDynamic: the same blocks
//              handed to idle workers through an atomic ticket counter.
//
// static and dynamic must produce bit-identical analyses (fingerprints are
// compared; they share one block partition and merge in block order).  The
// seed baseline merges a different, thread-count-dependent partition, so its
// reservoir-sampled performance moments legitimately differ in the last
// bits — it is checked on the exact integer invariants (jobs, logs) instead.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "darshan/log_format.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace mlio;
using SteadyClock = std::chrono::steady_clock;

struct ScaleArgs {
  std::uint64_t jobs = 600;
  std::uint64_t seed = 42;
  double logs_scale = 0.25;
  double files_scale = 0.25;
  unsigned threads = 0;
  unsigned reps = 3;
  bool roundtrip = false;
  bool compress = true;
  int zlib_level = 6;
  std::string out = "BENCH_pipeline.json";
};

ScaleArgs parse(int argc, char** argv) {
  ScaleArgs a;
  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--jobs")) a.jobs = std::strtoull(next("--jobs"), nullptr, 10);
    else if (!std::strcmp(argv[i], "--seed")) a.seed = std::strtoull(next("--seed"), nullptr, 10);
    else if (!std::strcmp(argv[i], "--logs-scale")) a.logs_scale = std::strtod(next("--logs-scale"), nullptr);
    else if (!std::strcmp(argv[i], "--files-scale")) a.files_scale = std::strtod(next("--files-scale"), nullptr);
    else if (!std::strcmp(argv[i], "--threads")) a.threads = static_cast<unsigned>(std::strtoul(next("--threads"), nullptr, 10));
    else if (!std::strcmp(argv[i], "--reps")) a.reps = static_cast<unsigned>(std::strtoul(next("--reps"), nullptr, 10));
    else if (!std::strcmp(argv[i], "--roundtrip")) a.roundtrip = true;
    else if (!std::strcmp(argv[i], "--no-compress")) a.compress = false;
    else if (!std::strcmp(argv[i], "--zlib-level")) a.zlib_level = static_cast<int>(std::strtol(next("--zlib-level"), nullptr, 10));
    else if (!std::strcmp(argv[i], "--out")) a.out = next("--out");
    else if (!std::strcmp(argv[i], "--help")) {
      std::printf("usage: %s [--jobs N] [--seed S] [--logs-scale X] [--files-scale X]\n"
                  "          [--threads T] [--reps R] [--roundtrip] [--no-compress]\n"
                  "          [--zlib-level L] [--out FILE]\n", argv[0]);
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown flag %s (try --help)\n", argv[i]);
      std::exit(2);
    }
  }
  return a;
}

struct RunResult {
  std::string mode;
  wl::PipelineStats stats;
  std::uint64_t fingerprint = 0;
};

/// The pre-refactor pipeline, preserved as the measurement baseline.
RunResult run_seed_baseline(const wl::WorkloadGenerator& gen, const ScaleArgs& a,
                            unsigned threads) {
  const auto t0 = SteadyClock::now();
  const sim::Machine& machine = wl::machine_for(gen.profile());
  const sim::JobExecutor executor(machine);
  const darshan::WriteOptions wopts{a.compress, a.zlib_level};

  auto consume = [&](core::Analysis& into, const sim::JobSpec& spec) {
    darshan::LogData log = executor.execute(spec);
    if (a.roundtrip) {
      const auto bytes = darshan::write_log_bytes(log, wopts);
      log = darshan::read_log_bytes(bytes);
    }
    into.add(log);
  };

  core::Analysis bulk;
  core::Analysis huge;
  util::ThreadPool pool(threads);
  const std::uint64_t n_jobs = gen.config().n_jobs;
  const std::uint64_t n_chunks = std::min<std::uint64_t>(n_jobs, pool.thread_count() * 4);
  std::vector<core::Analysis> shards(n_chunks);
  const auto t_bulk = SteadyClock::now();
  pool.parallel_for_chunks(0, n_jobs, n_chunks,
                           [&](std::uint64_t chunk, std::uint64_t lo, std::uint64_t hi) {
                             gen.generate_bulk_range(lo, hi, [&](const sim::JobSpec& spec) {
                               consume(shards[chunk], spec);
                             });
                           });
  for (const auto& shard : shards) bulk.merge(shard);

  RunResult r;
  r.stats.bulk_seconds = std::chrono::duration<double>(SteadyClock::now() - t_bulk).count();
  const auto t_huge = SteadyClock::now();
  gen.generate_huge([&](const sim::JobSpec& spec) { consume(huge, spec); });
  r.stats.huge_seconds = std::chrono::duration<double>(SteadyClock::now() - t_huge).count();

  r.mode = "seed";
  r.stats.threads = pool.thread_count();
  r.stats.dynamic_scheduling = false;
  r.stats.jobs = n_jobs + gen.huge_job_count();
  r.stats.logs = bulk.summary().logs() + huge.summary().logs();
  r.stats.simulated_bytes = bulk.total_bytes() + huge.total_bytes();
  r.stats.total_seconds = std::chrono::duration<double>(SteadyClock::now() - t0).count();
  core::Analysis all;
  all.merge(bulk);
  all.merge(huge);
  r.fingerprint = all.fingerprint();
  return r;
}

RunResult run_mode(const wl::WorkloadGenerator& gen, const ScaleArgs& a, unsigned threads,
                   wl::PipelineOptions::Scheduling mode) {
  wl::PipelineOptions opts;
  opts.threads = threads;
  opts.scheduling = mode;
  opts.roundtrip_logs = a.roundtrip;
  opts.write_options.compress = a.compress;
  opts.write_options.zlib_level = a.zlib_level;
  const wl::PipelineResult result = wl::run_pipeline(gen, opts);
  RunResult r;
  r.mode = mode == wl::PipelineOptions::Scheduling::kDynamic ? "dynamic" : "static";
  r.stats = result.stats;
  r.fingerprint = result.combined().fingerprint();
  return r;
}

void write_json(const ScaleArgs& a, const std::vector<RunResult>& runs, double speedup,
                bool fingerprints_match, bool seed_invariants_match) {
  std::FILE* f = std::fopen(a.out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", a.out.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n");
  std::fprintf(f,
               "  \"config\": {\"system\": \"Cori\", \"jobs\": %llu, \"seed\": %llu, "
               "\"logs_scale\": %g, \"files_scale\": %g, \"roundtrip\": %s, "
               "\"compress\": %s, \"zlib_level\": %d, \"include_huge\": true, "
               "\"host_cpus\": %u},\n",
               static_cast<unsigned long long>(a.jobs), static_cast<unsigned long long>(a.seed),
               a.logs_scale, a.files_scale, a.roundtrip ? "true" : "false",
               a.compress ? "true" : "false", a.zlib_level,
               std::thread::hardware_concurrency());
  const unsigned host_cpus = std::thread::hardware_concurrency();
  std::fprintf(f, "  \"runs\": [\n");
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const auto& s = runs[i].stats;
    std::fprintf(f,
                 "    {\"mode\": \"%s\", \"threads\": %u, \"oversubscribed\": %s, "
                 "\"jobs\": %llu, \"logs\": %llu,\n"
                 "     \"jobs_per_s\": %.2f, \"logs_per_s\": %.2f, \"opens_per_s\": %.2f, "
                 "\"simulated_bytes_per_s\": %.3e,\n"
                 "     \"total_s\": %.4f, \"bulk_s\": %.4f, \"huge_s\": %.4f, \"merge_s\": %.4f,\n"
                 "     \"block_jobs\": %llu, \"bulk_blocks\": %llu, \"huge_blocks\": %llu,\n"
                 "     \"exec\": {\"files\": %llu, \"segments\": %llu, \"rank_rows\": %llu, "
                 "\"opens\": %llu},\n"
                 "     \"worker_blocks\": [",
                 runs[i].mode.c_str(), s.threads, s.threads > host_cpus ? "true" : "false",
                 static_cast<unsigned long long>(s.jobs),
                 static_cast<unsigned long long>(s.logs), s.jobs_per_second(),
                 s.logs_per_second(), s.opens_per_second(), s.simulated_bytes_per_second(),
                 s.total_seconds, s.bulk_seconds, s.huge_seconds, s.merge_seconds,
                 static_cast<unsigned long long>(s.block_jobs),
                 static_cast<unsigned long long>(s.bulk_blocks),
                 static_cast<unsigned long long>(s.huge_blocks),
                 static_cast<unsigned long long>(s.exec.files),
                 static_cast<unsigned long long>(s.exec.segments),
                 static_cast<unsigned long long>(s.exec.rank_rows),
                 static_cast<unsigned long long>(s.exec.opens));
    for (std::size_t w = 0; w < s.worker_blocks.size(); ++w) {
      std::fprintf(f, "%s%llu", w != 0 ? ", " : "",
                   static_cast<unsigned long long>(s.worker_blocks[w]));
    }
    std::fprintf(f, "]}%s\n", i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"speedup_dynamic_vs_seed\": %.3f,\n", speedup);
  std::fprintf(f, "  \"static_dynamic_bit_identical\": %s,\n",
               fingerprints_match ? "true" : "false");
  std::fprintf(f, "  \"seed_invariants_match\": %s", seed_invariants_match ? "true" : "false");
  if (std::thread::hardware_concurrency() <= 1) {
    std::fprintf(f,
                 ",\n  \"note\": \"host has 1 cpu: parallel speedup is structurally "
                 "unobservable; the dynamic scheduler's gains (parallel huge stratum, "
                 "work stealing) require >= 2 cores, leaving only allocation-reuse "
                 "wins (~5-8%%) at this scale\"");
  }
  std::fprintf(f, "\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  const ScaleArgs args = parse(argc, argv);

  wl::GeneratorConfig cfg;
  cfg.seed = args.seed;
  cfg.n_jobs = args.jobs;
  cfg.logs_per_job_scale = args.logs_scale;
  cfg.files_per_log_scale = args.files_scale;
  // Cori: both hero-file layer groups are populated and DataWarp staging
  // adds job-level variance — the most skewed of the two populations.
  const wl::WorkloadGenerator gen(wl::SystemProfile::cori_2019(), cfg);

  // Best-of-reps per mode (standard for throughput: the minimum-time rep has
  // the least scheduler noise), at 1 thread and at the requested count.
  auto best_of = [&](auto&& run_once) {
    RunResult best = run_once();
    for (unsigned r = 1; r < std::max(1u, args.reps); ++r) {
      RunResult next = run_once();
      if (next.stats.total_seconds < best.stats.total_seconds) best = std::move(next);
    }
    return best;
  };

  std::vector<unsigned> thread_counts{1};
  const unsigned requested =
      args.threads != 0 ? args.threads : std::max(1u, std::thread::hardware_concurrency());
  if (requested != 1) thread_counts.push_back(requested);

  std::vector<RunResult> runs;
  for (const unsigned t : thread_counts) {
    runs.push_back(best_of([&] { return run_seed_baseline(gen, args, t); }));
    runs.push_back(
        best_of([&] { return run_mode(gen, args, t, wl::PipelineOptions::Scheduling::kStatic); }));
    runs.push_back(
        best_of([&] { return run_mode(gen, args, t, wl::PipelineOptions::Scheduling::kDynamic); }));
  }

  // Last three entries are seed/static/dynamic at the requested thread count.
  const RunResult& seed_run = runs[runs.size() - 3];
  const RunResult& static_run = runs[runs.size() - 2];
  const RunResult& dynamic_run = runs[runs.size() - 1];
  const double seed_rate = seed_run.stats.jobs_per_second();
  const double dynamic_rate = dynamic_run.stats.jobs_per_second();
  const double speedup = seed_rate > 0 ? dynamic_rate / seed_rate : 0;
  // static and dynamic share the block partition: exact fingerprint match.
  // The seed baseline merged thread-count-dependent chunks, so only its
  // integer invariants are comparable.
  const bool match = static_run.fingerprint == dynamic_run.fingerprint;
  const bool seed_ok = seed_run.stats.jobs == dynamic_run.stats.jobs &&
                       seed_run.stats.logs == dynamic_run.stats.logs;

  std::printf("%-8s %8s %10s %10s %12s %9s %9s %9s\n", "mode", "threads", "jobs/s",
              "logs/s", "GiB/s(sim)", "bulk_s", "huge_s", "total_s");
  for (const auto& r : runs) {
    const auto& s = r.stats;
    std::printf("%-8s %8u %10.1f %10.1f %12.2f %9.3f %9.3f %9.3f\n", r.mode.c_str(), s.threads,
                s.jobs_per_second(), s.logs_per_second(),
                s.simulated_bytes_per_second() / (1024.0 * 1024.0 * 1024.0), s.bulk_seconds,
                s.huge_seconds, s.total_seconds);
  }
  std::printf("\nspeedup dynamic vs seed: %.2fx\n", speedup);
  std::printf("static/dynamic bit-identical: %s, seed invariants match: %s\n",
              match ? "yes" : "NO — DETERMINISM BROKEN",
              seed_ok ? "yes" : "NO — JOB/LOG COUNT DRIFT");
  write_json(args, runs, speedup, match, seed_ok);
  std::printf("wrote %s\n", args.out.c_str());
  return match && seed_ok ? 0 : 1;
}
