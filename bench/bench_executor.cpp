// Executor hot-path driver: measures the executor→runtime path in isolation
// (single thread, specs pre-generated) and writes the numbers to
// BENCH_executor.json so the per-log cost trajectory is tracked across PRs.
//
//   per_rank — the seed emission path: one open_file/record_reads call per
//              explicit rank, string path hashed on every call
//              (ExecutorConfig::Emission::kPerRank, kept as the measurable
//              pre-refactor baseline).
//   batched  — the production path: the path interned once per file, both op
//              splits precomputed, one bulk Runtime call per segment fanning
//              out over the rank rows (Emission::kBatched).
//
// Both modes must serialize bit-identically (digests are compared); the JSON
// records jobs/s, logs/s, opens/s, the per-phase ns breakdown
// (generate/execute/serialize) and heap allocations per log (counted by a
// global operator new hook), plus the batched-vs-per-rank speedup.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "darshan/log_format.hpp"
#include "iosim/executor.hpp"
#include "workload/generator.hpp"
#include "workload/pipeline.hpp"

// ---------------------------------------------------------------------------
// Allocation counting: replace the global unaligned new/delete with a
// counting passthrough.  Relaxed atomics keep the hook usable if a future
// bench revision threads the measured loop; the aligned overloads stay at
// their defaults (they pair with the default aligned deletes).
namespace {
std::atomic<std::uint64_t> g_allocs{0};
std::atomic<std::uint64_t> g_alloc_bytes{0};
}  // namespace

void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(n, std::memory_order_relaxed);
  void* p = std::malloc(n != 0 ? n : 1);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace mlio;
using SteadyClock = std::chrono::steady_clock;

struct ExecArgs {
  std::uint64_t jobs = 300;
  std::uint64_t seed = 42;
  double logs_scale = 0.25;
  double files_scale = 0.25;
  unsigned reps = 5;
  std::string out = "BENCH_executor.json";
};

ExecArgs parse(int argc, char** argv) {
  ExecArgs a;
  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--jobs")) a.jobs = std::strtoull(next("--jobs"), nullptr, 10);
    else if (!std::strcmp(argv[i], "--seed")) a.seed = std::strtoull(next("--seed"), nullptr, 10);
    else if (!std::strcmp(argv[i], "--logs-scale")) a.logs_scale = std::strtod(next("--logs-scale"), nullptr);
    else if (!std::strcmp(argv[i], "--files-scale")) a.files_scale = std::strtod(next("--files-scale"), nullptr);
    else if (!std::strcmp(argv[i], "--reps")) a.reps = static_cast<unsigned>(std::strtoul(next("--reps"), nullptr, 10));
    else if (!std::strcmp(argv[i], "--out")) a.out = next("--out");
    else if (!std::strcmp(argv[i], "--help")) {
      std::printf("usage: %s [--jobs N] [--seed S] [--logs-scale X] [--files-scale X]\n"
                  "          [--reps R] [--out FILE]\n", argv[0]);
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown flag %s (try --help)\n", argv[i]);
      std::exit(2);
    }
  }
  return a;
}

std::uint64_t fnv1a(std::span<const std::byte> bytes, std::uint64_t h) {
  for (const std::byte b : bytes) {
    h ^= static_cast<std::uint64_t>(b);
    h *= 1099511628211ull;
  }
  return h;
}

/// One measured emission-mode run on one system's pre-generated specs.
struct ModeResult {
  std::string mode;
  double execute_s = 0;    ///< best-rep executor wall time
  double serialize_s = 0;  ///< best-rep serialization wall time
  std::uint64_t allocs = 0;        ///< heap allocations during the execute phase
  std::uint64_t alloc_bytes = 0;   ///< bytes requested during the execute phase
  std::uint64_t digest = 0;        ///< FNV-1a over every serialized log
  sim::ExecStats stats;

  double jobs_per_s(std::uint64_t jobs) const {
    return execute_s > 0 ? static_cast<double>(jobs) / execute_s : 0;
  }
  double logs_per_s() const {
    return execute_s > 0 ? static_cast<double>(stats.jobs) / execute_s : 0;
  }
  double opens_per_s() const {
    return execute_s > 0 ? static_cast<double>(stats.opens) / execute_s : 0;
  }
};

/// One emission mode's executor plus its scratch state and best-so-far
/// result.  Both lanes are driven rep-by-rep in alternation so the two
/// modes sample the same host conditions — on a busy machine, measuring one
/// mode's whole window before the other folds load drift into the ratio.
struct ModeLane {
  sim::JobExecutor executor;
  ModeResult best;
  darshan::LogData log;
  darshan::LogIoBuffers io;

  ModeLane(const sim::Machine& machine, sim::ExecutorConfig::Emission emission)
      : executor(machine, make_cfg(emission)) {
    best.mode = emission == sim::ExecutorConfig::Emission::kBatched ? "batched" : "per_rank";
    best.execute_s = -1;
    best.serialize_s = -1;
  }

  static sim::ExecutorConfig make_cfg(sim::ExecutorConfig::Emission emission) {
    sim::ExecutorConfig cfg;
    cfg.emission = emission;
    return cfg;
  }

  /// Execute phase: the hot path under test, allocs counted around it.
  void measure_execute(const std::vector<sim::JobSpec>& specs) {
    sim::ExecStats stats;
    const std::uint64_t allocs0 = g_allocs.load(std::memory_order_relaxed);
    const std::uint64_t bytes0 = g_alloc_bytes.load(std::memory_order_relaxed);
    const auto t0 = SteadyClock::now();
    for (const sim::JobSpec& spec : specs) executor.execute_into(spec, log, &stats);
    const auto t1 = SteadyClock::now();
    const double execute_s = std::chrono::duration<double>(t1 - t0).count();
    if (best.execute_s < 0 || execute_s < best.execute_s) {
      best.execute_s = execute_s;
      best.allocs = g_allocs.load(std::memory_order_relaxed) - allocs0;
      best.alloc_bytes = g_alloc_bytes.load(std::memory_order_relaxed) - bytes0;
      best.stats = stats;
    }
  }

  /// Serialize phase (separately timed, also digests for the bit-identity
  /// check — the logs must not depend on the emission mode).
  void measure_serialize(const std::vector<sim::JobSpec>& specs) {
    const darshan::WriteOptions wopts{false, 0};  // uncompressed: digest the raw frame
    double serialize_s = 0;
    std::uint64_t digest = 14695981039346656037ull;
    for (const sim::JobSpec& spec : specs) {
      executor.execute_into(spec, log);
      const auto w0 = SteadyClock::now();
      const auto frame = darshan::write_log_bytes_into(log, io, wopts);
      serialize_s += std::chrono::duration<double>(SteadyClock::now() - w0).count();
      digest = fnv1a(frame, digest);
    }
    best.digest = digest;
    if (best.serialize_s < 0 || serialize_s < best.serialize_s) best.serialize_s = serialize_s;
  }
};

struct SystemResult {
  std::string system;
  std::uint64_t jobs = 0;
  double generate_s = 0;  ///< one spec-generation pass (shared by both modes)
  ModeResult per_rank;
  ModeResult batched;
  bool bit_identical = false;
  double speedup = 0;
};

SystemResult run_system(const wl::SystemProfile& profile, const ExecArgs& a) {
  wl::GeneratorConfig cfg;
  cfg.seed = a.seed;
  cfg.n_jobs = a.jobs;
  cfg.logs_per_job_scale = a.logs_scale;
  cfg.files_per_log_scale = a.files_scale;
  const wl::WorkloadGenerator gen(profile, cfg);
  const sim::Machine& machine = wl::machine_for(profile);

  SystemResult r;
  r.system = profile.system;
  r.jobs = a.jobs;
  std::vector<sim::JobSpec> specs;
  const auto t0 = SteadyClock::now();
  gen.generate_bulk_range(0, a.jobs, [&](const sim::JobSpec& spec) { specs.push_back(spec); });
  r.generate_s = std::chrono::duration<double>(SteadyClock::now() - t0).count();

  ModeLane per_rank(machine, sim::ExecutorConfig::Emission::kPerRank);
  ModeLane batched(machine, sim::ExecutorConfig::Emission::kBatched);
  // Warm-up pass: fault in the specs and size every scratch vector.
  for (const sim::JobSpec& spec : specs) per_rank.executor.execute_into(spec, per_rank.log);
  for (const sim::JobSpec& spec : specs) batched.executor.execute_into(spec, batched.log);
  for (unsigned rep = 0; rep < std::max(1u, a.reps); ++rep) {
    per_rank.measure_execute(specs);
    batched.measure_execute(specs);
  }
  for (unsigned pass = 0; pass < 2; ++pass) {
    per_rank.measure_serialize(specs);
    batched.measure_serialize(specs);
  }
  r.per_rank = per_rank.best;
  r.batched = batched.best;
  r.bit_identical = r.per_rank.digest == r.batched.digest;
  const double base = r.per_rank.jobs_per_s(r.jobs);
  r.speedup = base > 0 ? r.batched.jobs_per_s(r.jobs) / base : 0;
  return r;
}

void print_mode(const SystemResult& s, const ModeResult& m) {
  std::printf("%-8s %-9s %10.1f %10.1f %12.1f %10.0f %10.1f\n", s.system.c_str(),
              m.mode.c_str(), m.jobs_per_s(s.jobs), m.logs_per_s(), m.opens_per_s(),
              m.stats.jobs > 0 ? 1e9 * m.execute_s / static_cast<double>(m.stats.jobs) : 0,
              m.stats.jobs > 0 ? static_cast<double>(m.allocs) / static_cast<double>(m.stats.jobs)
                               : 0);
}

void write_mode_json(std::FILE* f, const SystemResult& s, const ModeResult& m, bool last) {
  const double logs = m.stats.jobs > 0 ? static_cast<double>(m.stats.jobs) : 1;
  std::fprintf(
      f,
      "      {\"mode\": \"%s\", \"jobs_per_s\": %.2f, \"logs_per_s\": %.2f, "
      "\"opens_per_s\": %.2f,\n"
      "       \"phase_ns\": {\"generate_per_job\": %.0f, \"execute_per_log\": %.0f, "
      "\"serialize_per_log\": %.0f},\n"
      "       \"execute_s\": %.6f, \"serialize_s\": %.6f, \"allocs_per_log\": %.2f, "
      "\"alloc_bytes_per_log\": %.0f,\n"
      "       \"logs\": %llu, \"files\": %llu, \"segments\": %llu, \"rank_rows\": %llu, "
      "\"opens\": %llu,\n"
      "       \"digest\": %llu}%s\n",
      m.mode.c_str(), m.jobs_per_s(s.jobs), m.logs_per_s(), m.opens_per_s(),
      s.jobs > 0 ? 1e9 * s.generate_s / static_cast<double>(s.jobs) : 0,
      1e9 * m.execute_s / logs, 1e9 * m.serialize_s / logs, m.execute_s, m.serialize_s,
      static_cast<double>(m.allocs) / logs, static_cast<double>(m.alloc_bytes) / logs,
      static_cast<unsigned long long>(m.stats.jobs),
      static_cast<unsigned long long>(m.stats.files),
      static_cast<unsigned long long>(m.stats.segments),
      static_cast<unsigned long long>(m.stats.rank_rows),
      static_cast<unsigned long long>(m.stats.opens),
      static_cast<unsigned long long>(m.digest), last ? "" : ",");
}

void write_json(const ExecArgs& a, const std::vector<SystemResult>& systems, double min_speedup,
                bool all_identical) {
  std::FILE* f = std::fopen(a.out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", a.out.c_str());
    std::exit(1);
  }
  const unsigned host_cpus = std::thread::hardware_concurrency();
  std::fprintf(f, "{\n");
  std::fprintf(f,
               "  \"config\": {\"jobs\": %llu, \"seed\": %llu, \"logs_scale\": %g, "
               "\"files_scale\": %g, \"reps\": %u, \"threads\": 1, \"host_cpus\": %u, "
               "\"oversubscribed\": false},\n",
               static_cast<unsigned long long>(a.jobs), static_cast<unsigned long long>(a.seed),
               a.logs_scale, a.files_scale, a.reps, host_cpus);
  std::fprintf(f, "  \"systems\": [\n");
  for (std::size_t i = 0; i < systems.size(); ++i) {
    const SystemResult& s = systems[i];
    std::fprintf(f, "    {\"system\": \"%s\", \"jobs\": %llu, \"generate_s\": %.6f,\n",
                 s.system.c_str(), static_cast<unsigned long long>(s.jobs), s.generate_s);
    std::fprintf(f, "     \"runs\": [\n");
    write_mode_json(f, s, s.per_rank, false);
    write_mode_json(f, s, s.batched, true);
    std::fprintf(f, "     ],\n");
    std::fprintf(f, "     \"speedup_batched_vs_per_rank\": %.3f, \"bit_identical\": %s}%s\n",
                 s.speedup, s.bit_identical ? "true" : "false",
                 i + 1 < systems.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"min_speedup\": %.3f,\n", min_speedup);
  std::fprintf(f, "  \"speedup_target\": 1.5,\n");
  std::fprintf(f, "  \"speedup_target_met\": %s,\n", min_speedup >= 1.5 ? "true" : "false");
  std::fprintf(f, "  \"all_bit_identical\": %s\n", all_identical ? "true" : "false");
  std::fprintf(f, "}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  const ExecArgs args = parse(argc, argv);

  std::vector<SystemResult> systems;
  systems.push_back(run_system(wl::SystemProfile::summit_2020(), args));
  systems.push_back(run_system(wl::SystemProfile::cori_2019(), args));

  std::printf("%-8s %-9s %10s %10s %12s %10s %10s\n", "system", "mode", "jobs/s", "logs/s",
              "opens/s", "ns/log", "allocs/log");
  double min_speedup = 0;
  bool all_identical = true;
  for (const SystemResult& s : systems) {
    print_mode(s, s.per_rank);
    print_mode(s, s.batched);
    std::printf("%-8s speedup: %.2fx, bit-identical: %s\n", s.system.c_str(), s.speedup,
                s.bit_identical ? "yes" : "NO — DETERMINISM BROKEN");
    if (min_speedup == 0 || s.speedup < min_speedup) min_speedup = s.speedup;
    all_identical = all_identical && s.bit_identical;
  }

  write_json(args, systems, min_speedup, all_identical);
  std::printf("wrote %s (min speedup %.2fx, target 1.5x)\n", args.out.c_str(), min_speedup);
  return all_identical ? 0 : 1;
}
